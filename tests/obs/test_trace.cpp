#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "dds/common/error.hpp"
#include "dds/obs/jsonl_sink.hpp"
#include "dds/obs/trace_reader.hpp"
#include "dds/obs/trace_sink.hpp"

namespace dds::obs {
namespace {

/// Every variant once, with distinctive payloads (including non-finite
/// doubles, which must survive the round trip exactly).
std::vector<TraceEvent> sampleEvents() {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  return {
      RunHeaderEvent{"global", 42, 0.017, 0.7, 0.05, 3600.0, 60.0, "fluid"},
      IntervalBeginEvent{60.0, 1, 10.25},
      IntervalEndEvent{120.0, 1, 0.93, 0.951, 0.825, 3.52, 0.87, 14.5, 7,
                       23},
      VmAcquireEvent{61.5, 3, "m1.xlarge", 4, 0.48, 151.5},
      VmReleaseEvent{3540.0, 3, "m1.xlarge", 0.96},
      AcquisitionFailureEvent{62.0, "m1.large"},
      CoreAllocEvent{63.0, 3, 2, -1},
      AlternateSwitchEvent{120.0, 2, 1, 0, 0.6, 1.0},
      StragglerQuarantineEvent{180.0, 5, 0.42, 3},
      StragglerRecoveryEvent{240.0, 6},
      FaultInjectionEvent{300.0, 7, "crash", 123.5},
      OmegaViolationEvent{360.0, 5, 0.61, 0.7},
      SchedulerDecisionEvent{420.0, 7, "resource", "scale_out", 0.65, 0.72,
                             nan,
                             {{"alts=[0,0] vms=[2]", 0.81},
                              {"alts=[1,0] vms=[3]", -inf}}},
  };
}

TEST(TraceJsonl, EveryVariantRoundTripsByteIdentically) {
  for (const TraceEvent& event : sampleEvents()) {
    const std::string line = traceEventJson(event);
    const TraceEvent back = parseTraceEventJson(line);
    EXPECT_EQ(back.index(), event.index());
    // Byte identity of re-serialization is the contract ddtrace --check
    // enforces; it subsumes field-by-field equality.
    EXPECT_EQ(traceEventJson(back), line) << line;
  }
}

TEST(TraceJsonl, LinesAreCompactSingleLineObjects) {
  for (const TraceEvent& event : sampleEvents()) {
    const std::string line = traceEventJson(event);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(line.find("\"ev\":"), 1u) << line;
  }
}

TEST(TraceJsonl, NonFiniteDoublesUseStringSentinels) {
  SchedulerDecisionEvent e;
  e.theta = std::numeric_limits<double>::quiet_NaN();
  const std::string line = traceEventJson(TraceEvent{e});
  EXPECT_NE(line.find("\"theta\":\"NaN\""), std::string::npos) << line;
  const TraceEvent back = parseTraceEventJson(line);
  EXPECT_TRUE(std::isnan(std::get<SchedulerDecisionEvent>(back).theta));
}

TEST(TraceJsonl, NamesAndTimesAreExposed) {
  const auto events = sampleEvents();
  EXPECT_EQ(traceEventName(events[0]), "run_header");
  EXPECT_EQ(traceEventName(events[3]), "vm_acquire");
  EXPECT_EQ(traceEventName(events.back()), "scheduler_decision");
  EXPECT_EQ(traceEventTime(events[0]), 0.0);
  EXPECT_EQ(traceEventTime(events[1]), 60.0);
}

TEST(TraceReader, MalformedLinesThrowIoError) {
  EXPECT_THROW((void)parseTraceEventJson("not json"), IoError);
  EXPECT_THROW((void)parseTraceEventJson("{\"ev\":\"no_such_event\"}"),
               IoError);
  // A known event with a missing required field.
  EXPECT_THROW((void)parseTraceEventJson("{\"ev\":\"interval_begin\"}"),
               IoError);
  std::istringstream bad("{\"ev\":\"straggler_recovery\",\"t\":1,\"vm\":2}\n"
                         "garbage\n");
  EXPECT_THROW((void)readTraceJsonl(bad), IoError);
}

TEST(TraceReader, StreamRoundTripPreservesOrderAndSkipsBlanks) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  const auto events = sampleEvents();
  for (const TraceEvent& event : events) sink.emit(event);
  EXPECT_EQ(sink.eventCount(), events.size());

  std::istringstream in("\n" + out.str() + "\n");
  const std::vector<TraceEvent> back = readTraceJsonl(in);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i].index(), events[i].index());
    EXPECT_EQ(traceEventJson(back[i]), traceEventJson(events[i]));
  }
}

TEST(RingBufferSink, KeepsEverythingUnderCapacity) {
  RingBufferSink ring(8);
  for (std::int64_t i = 0; i < 5; ++i) {
    ring.emit(IntervalBeginEvent{static_cast<double>(i), i, 1.0});
  }
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.droppedCount(), 0u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(std::get<IntervalBeginEvent>(
                  events[static_cast<std::size_t>(i)]).interval,
              i);
  }
}

TEST(RingBufferSink, WraparoundKeepsTheMostRecentWindow) {
  RingBufferSink ring(4);
  for (std::int64_t i = 0; i < 11; ++i) {
    ring.emit(IntervalBeginEvent{static_cast<double>(i), i, 1.0});
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.droppedCount(), 7u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first window over the last 4 emissions: 7, 8, 9, 10.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(std::get<IntervalBeginEvent>(events[i]).interval,
              static_cast<std::int64_t>(7 + i));
  }
}

TEST(RingBufferSink, ZeroCapacityDropsEverything) {
  RingBufferSink ring(0);
  ring.emit(StragglerRecoveryEvent{1.0, 2});
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.droppedCount(), 1u);
  EXPECT_TRUE(ring.events().empty());
}

TEST(Tracer, NullTracerIsDisabledAndEmitIsSafe) {
  const Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.emit(StragglerRecoveryEvent{1.0, 2});  // must not crash
  RingBufferSink ring(4);
  const Tracer live(&ring);
  EXPECT_TRUE(live.enabled());
  live.emit(StragglerRecoveryEvent{1.0, 2});
  EXPECT_EQ(ring.size(), 1u);
}

}  // namespace
}  // namespace dds::obs
