#include "dds/obs/timeline.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dds::obs {
namespace {

/// A hand-built two-interval trace exercising event attribution.
std::vector<TraceEvent> syntheticTrace() {
  std::vector<TraceEvent> events;
  events.push_back(
      RunHeaderEvent{"global", 7, 0.5, 0.7, 0.05, 120.0, 60.0, "fluid"});
  events.push_back(IntervalBeginEvent{0.0, 0, 10.0});
  events.push_back(VmAcquireEvent{0.0, 0, "m1.small", 1, 0.06, 0.0});
  events.push_back(CoreAllocEvent{0.0, 0, 0, 1});
  events.push_back(IntervalEndEvent{60.0, 0, 0.6, 0.6, 1.0, 0.06, 0.9,
                                    5.0, 1, 1});
  events.push_back(OmegaViolationEvent{60.0, 0, 0.6, 0.7});
  events.push_back(IntervalBeginEvent{60.0, 1, 12.0});
  events.push_back(AlternateSwitchEvent{60.0, 0, 0, 1, 1.0, 0.6});
  events.push_back(SchedulerDecisionEvent{60.0, 1, "alternate", "downgrade",
                                          0.6, 0.6, 0.9, {}});
  events.push_back(VmAcquireEvent{70.0, 1, "m1.small", 1, 0.06, 70.0});
  events.push_back(AcquisitionFailureEvent{75.0, "m1.small"});
  events.push_back(FaultInjectionEvent{80.0, 0, "crash", 3.0});
  events.push_back(StragglerQuarantineEvent{90.0, 1, 0.4, 1});
  events.push_back(VmReleaseEvent{95.0, 1, "m1.small", 0.06});
  events.push_back(IntervalEndEvent{120.0, 1, 0.8, 0.7, 0.8, 0.12, 1.0,
                                    0.0, 1, 1});
  return events;
}

TEST(Timeline, FoldsIntervalsAndAttributesDiscreteEvents) {
  const TraceAnalysis a = analyzeTrace(syntheticTrace());
  ASSERT_TRUE(a.has_header);
  EXPECT_EQ(a.header.scheduler, "global");
  ASSERT_EQ(a.rows.size(), 2u);

  const TimelineRow& r0 = a.rows[0];
  EXPECT_EQ(r0.interval, 0);
  EXPECT_EQ(r0.input_rate, 10.0);
  EXPECT_EQ(r0.omega, 0.6);
  EXPECT_EQ(r0.utilization, 0.9);
  EXPECT_TRUE(r0.violated);
  EXPECT_EQ(r0.vm_acquires, 1);
  EXPECT_EQ(r0.vm_releases, 0);

  // t in [60, 120) lands in interval 1, including the boundary t = 60.
  const TimelineRow& r1 = a.rows[1];
  EXPECT_EQ(r1.interval, 1);
  EXPECT_EQ(r1.input_rate, 12.0);
  EXPECT_FALSE(r1.violated);
  EXPECT_EQ(r1.alternate_switches, 1);
  EXPECT_EQ(r1.vm_acquires, 1);
  EXPECT_EQ(r1.vm_releases, 1);
  EXPECT_EQ(r1.acquisition_failures, 1);
  EXPECT_EQ(r1.faults, 1);
  EXPECT_EQ(r1.quarantines, 1);
  EXPECT_EQ(r1.decisions, 1);

  EXPECT_EQ(a.violations, 1);
  EXPECT_NEAR(a.average_omega, 0.7, 1e-12);
  EXPECT_NEAR(a.average_gamma, 0.9, 1e-12);
  EXPECT_EQ(a.final_cost, 0.12);
  // Theta = Gamma_bar - sigma * mu with sigma from the header.
  EXPECT_NEAR(a.theta, 0.9 - 0.5 * 0.12, 1e-12);
  EXPECT_EQ(a.peak_vms, 1.0);
  EXPECT_EQ(a.event_counts.at("interval_end"), 2);
  EXPECT_EQ(a.event_counts.at("vm_acquire"), 2);
  EXPECT_EQ(a.event_counts.at("run_header"), 1);
}

TEST(Timeline, EmptyAndHeaderlessTracesAreHandled) {
  EXPECT_TRUE(analyzeTrace({}).rows.empty());
  const TraceAnalysis a = analyzeTrace(
      {IntervalEndEvent{60.0, 0, 0.9, 0.9, 1.0, 0.1, 1.0, 0.0, 1, 1}});
  EXPECT_FALSE(a.has_header);
  ASSERT_EQ(a.rows.size(), 1u);
  EXPECT_EQ(a.rows[0].omega, 0.9);
  // Without a header sigma defaults to 0, so theta == gamma-bar.
  EXPECT_EQ(a.theta, a.average_gamma);
}

}  // namespace
}  // namespace dds::obs
