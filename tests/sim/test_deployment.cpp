#include "dds/sim/deployment.hpp"

#include <gtest/gtest.h>

#include "dds/dataflow/standard_graphs.hpp"

namespace dds {
namespace {

struct Fixture {
  Dataflow df = makePaperDataflow();
  CloudProvider cloud{awsCatalog2013()};
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon{cloud, replayer};
};

TEST(Deployment, DefaultsToFirstAlternate) {
  Fixture f;
  const Deployment d(f.df);
  EXPECT_EQ(d.peCount(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(d.activeAlternate(PeId(i)), AlternateId(0));
  }
}

TEST(Deployment, SetAndGetAlternate) {
  Fixture f;
  Deployment d(f.df);
  d.setActiveAlternate(PeId(1), AlternateId(1));
  EXPECT_EQ(d.activeAlternate(PeId(1)), AlternateId(1));
  EXPECT_EQ(d.activeAlternate(PeId(2)), AlternateId(0));
}

TEST(Deployment, RejectsOutOfRangeIndices) {
  Fixture f;
  Deployment d(f.df);
  EXPECT_THROW(d.setActiveAlternate(PeId(9), AlternateId(0)),
               PreconditionError);
  // E1 has a single alternate.
  EXPECT_THROW(d.setActiveAlternate(PeId(0), AlternateId(1)),
               PreconditionError);
  EXPECT_THROW((void)d.activeAlternate(PeId(9)), PreconditionError);
}

TEST(DeploymentViews, PeCoresGroupsByVm) {
  Fixture f;
  const VmId a = f.cloud.acquire(ResourceClassId(3), 0.0);  // 4 cores
  const VmId b = f.cloud.acquire(ResourceClassId(0), 0.0);  // 1 core
  f.cloud.instance(a).allocateCore(PeId(1));
  f.cloud.instance(a).allocateCore(PeId(1));
  f.cloud.instance(b).allocateCore(PeId(1));
  f.cloud.instance(a).allocateCore(PeId(2));

  const auto cores = peCores(f.cloud, PeId(1));
  ASSERT_EQ(cores.size(), 2u);
  int total = 0;
  for (const auto& vc : cores) total += vc.cores;
  EXPECT_EQ(total, 3);
  EXPECT_EQ(totalCores(f.cloud, PeId(1)), 3);
  EXPECT_EQ(totalCores(f.cloud, PeId(2)), 1);
  EXPECT_EQ(totalCores(f.cloud, PeId(0)), 0);
}

TEST(DeploymentViews, ReleasedVmsAreInvisible) {
  Fixture f;
  const VmId a = f.cloud.acquire(ResourceClassId(0), 0.0);
  f.cloud.instance(a).allocateCore(PeId(0));
  EXPECT_EQ(totalCores(f.cloud, PeId(0)), 1);
  f.cloud.instance(a).releaseAllCoresOf(PeId(0));
  f.cloud.release(a, 10.0);
  EXPECT_EQ(totalCores(f.cloud, PeId(0)), 0);
  EXPECT_TRUE(peCores(f.cloud, PeId(0)).empty());
}

TEST(DeploymentViews, RatedPowerSumsCoreSpeeds) {
  Fixture f;
  const VmId xl = f.cloud.acquire(ResourceClassId(3), 0.0);  // speed 2
  const VmId sm = f.cloud.acquire(ResourceClassId(0), 0.0);  // speed 1
  f.cloud.instance(xl).allocateCore(PeId(0));
  f.cloud.instance(xl).allocateCore(PeId(0));
  f.cloud.instance(sm).allocateCore(PeId(0));
  EXPECT_DOUBLE_EQ(ratedPowerOf(f.cloud, PeId(0)), 5.0);
}

TEST(DeploymentViews, ObservedPowerUsesMonitoring) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer degraded({PerfTrace::constant(0.5)},
                         {PerfTrace::constant(1.0)},
                         {PerfTrace::constant(1.0)}, 0);
  MonitoringService mon(cloud, degraded);
  const VmId xl = cloud.acquire(ResourceClassId(3), 0.0);
  cloud.instance(xl).allocateCore(PeId(0));
  EXPECT_DOUBLE_EQ(ratedPowerOf(cloud, PeId(0)), 2.0);
  EXPECT_DOUBLE_EQ(observedPowerOf(cloud, mon, PeId(0), 0.0), 1.0);
}

TEST(DeploymentViews, Colocation) {
  Fixture f;
  const VmId a = f.cloud.acquire(ResourceClassId(3), 0.0);
  const VmId b = f.cloud.acquire(ResourceClassId(3), 0.0);
  f.cloud.instance(a).allocateCore(PeId(0));
  f.cloud.instance(a).allocateCore(PeId(1));
  f.cloud.instance(b).allocateCore(PeId(2));
  EXPECT_TRUE(areColocated(f.cloud, PeId(0), PeId(1)));
  EXPECT_FALSE(areColocated(f.cloud, PeId(0), PeId(2)));
}

TEST(DeploymentViews, TotalAllocatedCoresCountsActiveVmsOnly) {
  Fixture f;
  const VmId a = f.cloud.acquire(ResourceClassId(3), 0.0);
  const VmId b = f.cloud.acquire(ResourceClassId(0), 0.0);
  f.cloud.instance(a).allocateCore(PeId(0));
  f.cloud.instance(a).allocateCore(PeId(1));
  f.cloud.instance(b).allocateCore(PeId(2));
  EXPECT_EQ(totalAllocatedCores(f.cloud), 3);
  f.cloud.instance(b).releaseAllCoresOf(PeId(2));
  f.cloud.release(b, 0.0);
  EXPECT_EQ(totalAllocatedCores(f.cloud), 2);
}

}  // namespace
}  // namespace dds
