#include "dds/sim/deployment_report.hpp"

#include <gtest/gtest.h>

#include "dds/dataflow/standard_graphs.hpp"

namespace dds {
namespace {

struct Fixture {
  Dataflow df = makePaperDataflow();
  CloudProvider cloud{awsCatalog2013()};
};

TEST(DeploymentReport, EmptyCloudSaysSo) {
  Fixture f;
  EXPECT_NE(renderVmLayout(f.df, f.cloud).find("no active VMs"),
            std::string::npos);
}

TEST(DeploymentReport, VmLayoutShowsOwnersAndFreeSlots) {
  Fixture f;
  const VmId vm = f.cloud.acquire(ResourceClassId(3), 0.0);  // 4 cores
  f.cloud.instance(vm).allocateCore(PeId(0));
  f.cloud.instance(vm).allocateCore(PeId(1));
  const std::string out = renderVmLayout(f.df, f.cloud);
  EXPECT_NE(out.find("m1.xlarge"), std::string::npos);
  EXPECT_NE(out.find("E1"), std::string::npos);
  EXPECT_NE(out.find("E2"), std::string::npos);
  EXPECT_NE(out.find("--"), std::string::npos);  // two free cores
}

TEST(DeploymentReport, ReleasedVmsDisappear) {
  Fixture f;
  const VmId vm = f.cloud.acquire(ResourceClassId(0), 0.0);
  f.cloud.release(vm, 0.0);
  EXPECT_EQ(renderVmLayout(f.df, f.cloud).find("vm-0"), std::string::npos);
}

TEST(DeploymentReport, PeAllocationsNameActiveAlternate) {
  Fixture f;
  const VmId vm = f.cloud.acquire(ResourceClassId(3), 0.0);
  f.cloud.instance(vm).allocateCore(PeId(1));
  f.cloud.instance(vm).allocateCore(PeId(1));
  Deployment dep(f.df);
  dep.setActiveAlternate(PeId(1), AlternateId(1));
  const std::string out = renderPeAllocations(f.df, f.cloud, dep);
  EXPECT_NE(out.find("PE E2 (e2-fast): 2 cores"), std::string::npos);
  EXPECT_NE(out.find("rated power 4"), std::string::npos);
  EXPECT_NE(out.find("PE E3 (e3-accurate): 0 cores"), std::string::npos);
}

TEST(DeploymentReport, FullSnapshotIncludesCost) {
  Fixture f;
  (void)f.cloud.acquire(ResourceClassId(0), 0.0);
  const Deployment dep(f.df);
  const std::string out =
      renderDeployment(f.df, f.cloud, dep, kSecondsPerHour);
  EXPECT_NE(out.find("accumulated cost: $0.06"), std::string::npos);
  EXPECT_NE(out.find("sc13-fig1"), std::string::npos);
}

}  // namespace
}  // namespace dds
