#include "dds/sim/rate_model.hpp"

#include <gtest/gtest.h>

#include "dds/dataflow/standard_graphs.hpp"

namespace dds {
namespace {

TEST(RateModel, PaperGraphArrivalsWithAccurateAlternates) {
  const Dataflow df = makePaperDataflow();
  const Deployment dep(df);  // alternate 0 everywhere
  // E1 sel 1.0 -> E2 and E3 each see 10. E2 sel 1.0 gives 10, E3 sel 1.2
  // gives 12; E4 merges 10 + 12 = 22.
  const auto arrivals = expectedArrivalRates(df, dep, 10.0);
  EXPECT_DOUBLE_EQ(arrivals[0], 10.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 10.0);
  EXPECT_DOUBLE_EQ(arrivals[2], 10.0);
  EXPECT_DOUBLE_EQ(arrivals[3], 22.0);
}

TEST(RateModel, AlternateSwitchChangesDownstreamRates) {
  const Dataflow df = makePaperDataflow();
  Deployment dep(df);
  dep.setActiveAlternate(PeId(1), AlternateId(1));  // e2-fast, sel 0.8
  dep.setActiveAlternate(PeId(2), AlternateId(1));  // e3-fast, sel 1.0
  const auto arrivals = expectedArrivalRates(df, dep, 10.0);
  EXPECT_DOUBLE_EQ(arrivals[3], 8.0 + 10.0);
}

TEST(RateModel, OutputRatesApplyOwnSelectivity) {
  const Dataflow df = makePaperDataflow();
  const Deployment dep(df);
  const auto out = expectedOutputRates(df, dep, 10.0);
  EXPECT_DOUBLE_EQ(out[0], 10.0);  // E1 sel 1.0
  EXPECT_DOUBLE_EQ(out[2], 12.0);  // E3 sel 1.2
  EXPECT_DOUBLE_EQ(out[3], 22.0);  // E4 sel 1.0 on 22 arrivals
}

TEST(RateModel, SelectivityCompoundsAlongChains) {
  DataflowBuilder b("amplify");
  const PeId a = b.addPe("a", {{"a", 1.0, 0.1, 2.0}});
  const PeId c = b.addPe("b", {{"b", 1.0, 0.1, 3.0}});
  const PeId d = b.addPe("c", {{"c", 1.0, 0.1, 1.0}});
  b.addEdge(a, c);
  b.addEdge(c, d);
  const Dataflow df = std::move(b).build();
  const Deployment dep(df);
  const auto arrivals = expectedArrivalRates(df, dep, 5.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 10.0);  // 5 * 2
  EXPECT_DOUBLE_EQ(arrivals[2], 30.0);  // 10 * 3
}

TEST(RateModel, AndSplitDuplicatesToEachSuccessor) {
  const Dataflow df = makeDiamondDataflow();
  const Deployment dep(df);
  const auto arrivals = expectedArrivalRates(df, dep, 4.0);
  // src (sel 1) duplicates the full stream to both branches.
  EXPECT_DOUBLE_EQ(arrivals[1], 4.0);
  EXPECT_DOUBLE_EQ(arrivals[2], 4.0);
  // sink multi-merges: a gives 4, b (sel 2) gives 8.
  EXPECT_DOUBLE_EQ(arrivals[3], 12.0);
}

TEST(RateModel, ZeroInputRateGivesAllZeros) {
  const Dataflow df = makePaperDataflow();
  const Deployment dep(df);
  for (const double r : expectedArrivalRates(df, dep, 0.0)) {
    EXPECT_DOUBLE_EQ(r, 0.0);
  }
}

TEST(RateModel, RequiredPowerIsRateTimesCost) {
  const Dataflow df = makePaperDataflow();
  const Deployment dep(df);
  const auto power = requiredCorePower(df, dep, 10.0);
  EXPECT_DOUBLE_EQ(power[0], 10.0 * 2.0);
  EXPECT_DOUBLE_EQ(power[1], 10.0 * 8.0);
  EXPECT_DOUBLE_EQ(power[2], 10.0 * 12.0);
  EXPECT_DOUBLE_EQ(power[3], 22.0 * 3.2);
}

TEST(RateModel, RequiredPowerScalesLinearlyWithRate) {
  const Dataflow df = makePaperDataflow();
  const Deployment dep(df);
  const auto p1 = requiredCorePower(df, dep, 5.0);
  const auto p2 = requiredCorePower(df, dep, 10.0);
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_NEAR(p2[i], 2.0 * p1[i], 1e-12);
  }
}

TEST(RateModel, RejectsNegativeRateAndMismatchedDeployment) {
  const Dataflow df = makePaperDataflow();
  const Deployment dep(df);
  EXPECT_THROW((void)expectedArrivalRates(df, dep, -1.0),
               PreconditionError);
  const Dataflow other = makeDiamondDataflow();
  // Note: both graphs have four PEs, so build one with a different count.
  const Dataflow chain = makeChainDataflow(2, 1);
  const Deployment short_dep(chain);
  EXPECT_THROW((void)expectedArrivalRates(df, short_dep, 1.0),
               PreconditionError);
}

class RateLinearityTest : public ::testing::TestWithParam<double> {};

TEST_P(RateLinearityTest, ArrivalsScaleWithInput) {
  const Dataflow df = makePaperDataflow();
  const Deployment dep(df);
  const double k = GetParam();
  const auto base = expectedArrivalRates(df, dep, 1.0);
  const auto scaled = expectedArrivalRates(df, dep, k);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(scaled[i], k * base[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, RateLinearityTest,
                         ::testing::Values(2.0, 5.0, 10.0, 25.0, 50.0));

}  // namespace
}  // namespace dds
