// Bit-identity, golden-trace, and rebuild-accounting coverage for the
// cached SoA fluid kernel. The cached kernel is a memoization of the
// reference kernel, not an approximation: per-PE stats, Omega/Gamma/cost,
// the monitoring-query RNG stream — and the trace bytes of an engine run —
// must match byte-for-byte, with every PR 6-8 feature layered on top
// (provisioning delays, spot preemption, migration pauses, forecasting,
// pre-acquisition).
//
// Regenerate the golden fixtures with DDS_REGEN_FLUID_FIXTURES=1 (writes
// into tests/sim/testdata); they pin today's bytes against both kernels.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "dds/common/rng.hpp"
#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/obs/jsonl_sink.hpp"
#include "dds/sim/simulator.hpp"

namespace dds {
namespace {

// --- cached engine == reference engine, end to end -------------------------

struct TracedRun {
  std::string trace;
  ExperimentResult result;
};

TracedRun runTracedFluid(const Dataflow& df, ExperimentConfig cfg,
                         SchedulerKind kind, bool reference_engine) {
  cfg.fluid_reference_engine = reference_engine;
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  ExperimentResult r = SimulationEngine(df, cfg).run(kind, &sink);
  return {out.str(), std::move(r)};
}

void expectIdenticalRuns(const Dataflow& df, const ExperimentConfig& cfg,
                         SchedulerKind kind, const std::string& label) {
  const TracedRun ref = runTracedFluid(df, cfg, kind, true);
  const TracedRun cached = runTracedFluid(df, cfg, kind, false);
  ASSERT_FALSE(cached.trace.empty()) << label;
  EXPECT_EQ(cached.trace, ref.trace) << label;
  // Bitwise-equal scalars, not just matching trace bytes.
  EXPECT_EQ(cached.result.average_omega, ref.result.average_omega) << label;
  EXPECT_EQ(cached.result.average_gamma, ref.result.average_gamma) << label;
  EXPECT_EQ(cached.result.total_cost, ref.result.total_cost) << label;
  EXPECT_EQ(cached.result.theta, ref.result.theta) << label;
  EXPECT_EQ(cached.result.peak_vms, ref.result.peak_vms) << label;
  EXPECT_EQ(cached.result.peak_cores, ref.result.peak_cores) << label;
}

TEST(FluidIdentity, RandomGraphsMatchReferenceAcrossSeeds) {
  for (std::uint64_t s = 1; s <= 6; ++s) {
    Rng rng(s);
    const Dataflow df =
        makeLayeredDataflow(2 + s % 3, 2 + s % 2, 2, rng);
    ExperimentConfig cfg;
    cfg.horizon_s = 12.0 * 60.0;
    cfg.seed = 500 + s;
    cfg.workload.mean_rate = 8.0 + static_cast<double>(s);
    cfg.workload.profile = ProfileKind::PeriodicWave;
    cfg.workload.infra_variability = true;
    if (s % 2 == 1) {
      // A fault model collapses monitoring validity windows to the query
      // instant: the cached kernel must re-walk everything per interval
      // in the reference order.
      cfg.faults.straggler_mtbf_hours = 0.2;
      cfg.faults.partition_mtbf_hours = 0.3;
    }
    if (s % 3 == 0) {
      cfg.elasticity.provisioning_delay_s = 120.0;
      cfg.elasticity.spot_discount = 0.6;
      cfg.elasticity.spot_preemption_mtbf_h = 0.3;
      cfg.elasticity.pe_state_mb = 20.0;
    }
    const SchedulerKind kind = (s % 2 == 0) ? SchedulerKind::GlobalAdaptive
                                            : SchedulerKind::LocalAdaptive;
    expectIdenticalRuns(df, cfg, kind, "seed " + std::to_string(s));
  }
}

TEST(FluidIdentity, PaperGraphStaticAndAdaptive) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = 20.0 * 60.0;
  cfg.seed = 4242;
  cfg.workload.mean_rate = 12.0;
  cfg.workload.profile = ProfileKind::RandomWalk;
  cfg.workload.infra_variability = true;
  expectIdenticalRuns(df, cfg, SchedulerKind::GlobalStatic, "static");
  expectIdenticalRuns(df, cfg, SchedulerKind::GlobalAdaptive, "adaptive");
}

// --- golden engine traces --------------------------------------------------

std::string fixturePath(const std::string& name) {
  return std::string(DDS_SIM_TESTDATA) + "/" + name;
}

std::string readFixture(const std::string& name) {
  std::ifstream in(fixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << fixturePath(name);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Compare against the committed fixture, or rewrite it when the regen
/// env var is set (then fail, so a regen run is never mistaken for green).
void expectMatchesFixture(const std::string& actual,
                          const std::string& name) {
  if (std::getenv("DDS_REGEN_FLUID_FIXTURES") != nullptr) {
    std::ofstream out(fixturePath(name), std::ios::binary);
    out << actual;
    FAIL() << "regenerated " << name << " — rerun without "
           << "DDS_REGEN_FLUID_FIXTURES";
  }
  EXPECT_EQ(actual, readFixture(name));
}

ExperimentConfig forecastOnConfig() {
  ExperimentConfig cfg;
  cfg.horizon_s = 30.0 * 60.0;
  cfg.seed = 77;
  cfg.workload.mean_rate = 10.0;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;
  cfg.forecast.model = ForecastModel::Ewma;
  cfg.elasticity.provisioning_delay_s = 120.0;
  return cfg;
}

ExperimentConfig elasticityOnConfig() {
  ExperimentConfig cfg;
  cfg.horizon_s = 30.0 * 60.0;
  cfg.seed = 99;
  cfg.workload.mean_rate = 10.0;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;
  cfg.elasticity.provisioning_delay_s = 180.0;
  cfg.elasticity.spot_discount = 0.6;
  cfg.elasticity.spot_preemption_mtbf_h = 0.3;
  cfg.elasticity.spot_notice_s = 120.0;
  cfg.elasticity.pe_state_mb = 50.0;
  return cfg;
}

TEST(FluidGolden, ForecastOnCachedTraceByteIdentical) {
  const TracedRun run =
      runTracedFluid(makePaperDataflow(), forecastOnConfig(),
                     SchedulerKind::GlobalPredictive, false);
  expectMatchesFixture(run.trace, "golden_fluid_forecast_trace.jsonl");
}

TEST(FluidGolden, ForecastOnReferenceTraceByteIdentical) {
  // Same fixture on purpose: the two kernels must emit the same bytes.
  const TracedRun run =
      runTracedFluid(makePaperDataflow(), forecastOnConfig(),
                     SchedulerKind::GlobalPredictive, true);
  expectMatchesFixture(run.trace, "golden_fluid_forecast_trace.jsonl");
}

TEST(FluidGolden, ElasticityOnCachedTraceByteIdentical) {
  const TracedRun run =
      runTracedFluid(makePaperDataflow(), elasticityOnConfig(),
                     SchedulerKind::GlobalAdaptive, false);
  expectMatchesFixture(run.trace, "golden_fluid_elasticity_trace.jsonl");
}

TEST(FluidGolden, ElasticityOnReferenceTraceByteIdentical) {
  const TracedRun run =
      runTracedFluid(makePaperDataflow(), elasticityOnConfig(),
                     SchedulerKind::GlobalAdaptive, true);
  expectMatchesFixture(run.trace, "golden_fluid_elasticity_trace.jsonl");
}

// --- rebuild accounting ----------------------------------------------------

/// Two-stage pipeline: src (cost 0.1, sel 1) -> sink (cost 0.1, sel 1).
Dataflow makePipeline() {
  DataflowBuilder b("pipe");
  const PeId a = b.addPe("src", {{"src", 1.0, 0.1, 1.0}});
  const PeId c = b.addPe("sink", {{"sink", 1.0, 0.1, 1.0}});
  b.addEdge(a, c);
  return std::move(b).build();
}

struct Fixture {
  explicit Fixture(Dataflow graph) : df(std::move(graph)) {}
  Dataflow df;
  CloudProvider cloud{awsCatalog2013()};
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon{cloud, replayer};

  void giveSmallCores(PeId pe, int n) {
    for (int i = 0; i < n; ++i) {
      const VmId vm = cloud.acquire(ResourceClassId(0), 0.0);
      cloud.instance(vm).allocateCore(pe);
    }
  }
};

TEST(FluidKernelRebuilds, CachedRebuildsOnlyOnLedgerChange) {
  Fixture f(makePipeline());
  f.giveSmallCores(PeId(0), 1);
  f.giveSmallCores(PeId(1), 1);
  Deployment dep(f.df);
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  (void)sim.step(0, 5.0, dep);
  (void)sim.step(1, 5.0, dep);
  (void)sim.step(2, 5.0, dep);
  EXPECT_EQ(sim.kernelRebuilds(), 1u);
  // Any ledger mutation bumps the generation and forces one rebuild.
  f.giveSmallCores(PeId(1), 1);
  (void)sim.step(3, 5.0, dep);
  (void)sim.step(4, 5.0, dep);
  EXPECT_EQ(sim.kernelRebuilds(), 2u);
}

TEST(FluidKernelRebuilds, ReferenceSnapshotsEveryInterval) {
  Fixture f(makePipeline());
  f.giveSmallCores(PeId(0), 1);
  Deployment dep(f.df);
  SimConfig cfg;
  cfg.engine = SimConfig::Engine::Reference;
  DataflowSimulator sim(f.df, f.cloud, f.mon, cfg);
  for (IntervalIndex i = 0; i < 4; ++i) (void)sim.step(i, 5.0, dep);
  EXPECT_EQ(sim.kernelRebuilds(), 4u);
}

TEST(FluidKernelRebuilds, MigrationAndPauseComposeIdentically) {
  // Mid-run queue surgery (what spot drains and scale-in do) must leave
  // both kernels in identical states.
  auto run = [](SimConfig::Engine engine) {
    Fixture f(makePipeline());
    f.giveSmallCores(PeId(0), 1);
    f.giveSmallCores(PeId(1), 1);
    Deployment dep(f.df);
    SimConfig cfg;
    cfg.engine = engine;
    DataflowSimulator sim(f.df, f.cloud, f.mon, cfg);
    (void)sim.step(0, 20.0, dep);
    sim.migrateBacklog(PeId(0), 0.5);
    sim.pauseService(PeId(0), 45.0);
    const IntervalMetrics a = sim.step(1, 20.0, dep);
    const IntervalMetrics b = sim.step(2, 5.0, dep);
    return std::pair{a, b};
  };
  const auto ref = run(SimConfig::Engine::Reference);
  const auto cached = run(SimConfig::Engine::Cached);
  for (std::size_t i = 0; i < 2; ++i) {
    const PeIntervalStats& r =
        (i == 0 ? ref.first : ref.second).pe_stats[0];
    const PeIntervalStats& c =
        (i == 0 ? cached.first : cached.second).pe_stats[0];
    EXPECT_EQ(c.processed_rate, r.processed_rate);
    EXPECT_EQ(c.backlog_msgs, r.backlog_msgs);
    EXPECT_EQ(c.output_rate, r.output_rate);
  }
  EXPECT_EQ(cached.second.omega, ref.second.omega);
}

}  // namespace
}  // namespace dds
