#include "dds/sim/simulator.hpp"

#include <gtest/gtest.h>

#include "dds/dataflow/standard_graphs.hpp"

namespace dds {
namespace {

/// Two-stage pipeline: src (cost 0.1, sel 1) -> sink (cost 0.1, sel 1).
Dataflow makePipeline() {
  DataflowBuilder b("pipe");
  const PeId a = b.addPe("src", {{"src", 1.0, 0.1, 1.0}});
  const PeId c = b.addPe("sink", {{"sink", 1.0, 0.1, 1.0}});
  b.addEdge(a, c);
  return std::move(b).build();
}

struct Fixture {
  explicit Fixture(Dataflow graph) : df(std::move(graph)) {}
  Dataflow df;
  CloudProvider cloud{awsCatalog2013()};
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon{cloud, replayer};

  /// Allocate `n` cores of an m1.small (speed 1) on a fresh VM for `pe`.
  void giveSmallCores(PeId pe, int n) {
    for (int i = 0; i < n; ++i) {
      const VmId vm = cloud.acquire(ResourceClassId(0), 0.0);
      cloud.instance(vm).allocateCore(pe);
    }
  }
};

TEST(Simulator, FullCapacityGivesUnitOmegaAndNoBacklog) {
  Fixture f(makePipeline());
  // cost 0.1 => one speed-1 core handles 10 msg/s; drive at 5.
  f.giveSmallCores(PeId(0), 1);
  f.giveSmallCores(PeId(1), 1);
  Deployment dep(f.df);
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  const auto m = sim.step(0, 5.0, dep);
  EXPECT_NEAR(m.omega, 1.0, 1e-9);
  EXPECT_NEAR(sim.totalBacklog(), 0.0, 1e-9);
  EXPECT_NEAR(m.pe_stats[0].processed_rate, 5.0, 1e-9);
  EXPECT_NEAR(m.pe_stats[1].output_rate, 5.0, 1e-9);
}

TEST(Simulator, NoCoresMeansZeroThroughputAndGrowingBacklog) {
  Fixture f(makePipeline());
  Deployment dep(f.df);
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  const auto m = sim.step(0, 5.0, dep);
  EXPECT_NEAR(m.omega, 0.0, 1e-9);
  // Source queues one interval of arrivals (5 msg/s * 60 s).
  EXPECT_NEAR(sim.backlog(PeId(0)), 300.0, 1e-9);
  const auto m2 = sim.step(1, 5.0, dep);
  EXPECT_NEAR(sim.backlog(PeId(0)), 600.0, 1e-9);
  EXPECT_NEAR(m2.omega, 0.0, 1e-9);
}

TEST(Simulator, BottleneckCapsDownstreamThroughput) {
  Fixture f(makePipeline());
  f.giveSmallCores(PeId(0), 1);  // 10 msg/s capacity
  f.giveSmallCores(PeId(1), 1);
  Deployment dep(f.df);
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  // Drive at 20: the source can only process 10 => omega ~ 0.5.
  const auto m = sim.step(0, 20.0, dep);
  EXPECT_NEAR(m.omega, 0.5, 1e-9);
  EXPECT_NEAR(m.pe_stats[0].processed_rate, 10.0, 1e-9);
  EXPECT_NEAR(sim.backlog(PeId(0)), 10.0 * 60.0, 1e-9);
  EXPECT_NEAR(m.pe_stats[0].relative_throughput, 0.5, 1e-9);
}

TEST(Simulator, BacklogDrainsWhenLoadDrops) {
  Fixture f(makePipeline());
  f.giveSmallCores(PeId(0), 1);
  f.giveSmallCores(PeId(1), 2);
  Deployment dep(f.df);
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  (void)sim.step(0, 20.0, dep);  // builds 600 msgs of backlog at src
  EXPECT_GT(sim.backlog(PeId(0)), 0.0);
  // Stop the input: the source now drains 10 msg/s * 60 s per interval.
  (void)sim.step(1, 0.0, dep);
  EXPECT_NEAR(sim.backlog(PeId(0)), 0.0, 1e-9);
}

TEST(Simulator, OmegaClampedToOneWhileDraining) {
  Fixture f(makePipeline());
  f.giveSmallCores(PeId(0), 2);
  f.giveSmallCores(PeId(1), 2);
  Deployment dep(f.df);
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  (void)sim.step(0, 40.0, dep);  // overload builds backlog
  const auto m = sim.step(1, 1.0, dep);  // drain: output > expected
  EXPECT_LE(m.omega, 1.0);
  EXPECT_GT(m.omega, 0.99);
}

TEST(Simulator, GammaTracksActiveAlternates) {
  Fixture f(makePaperDataflow());
  Deployment dep(f.df);
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  const auto m1 = sim.step(0, 0.0, dep);
  EXPECT_NEAR(m1.gamma, 1.0, 1e-12);  // all best-value alternates
  dep.setActiveAlternate(PeId(1), AlternateId(1));  // value 0.7
  dep.setActiveAlternate(PeId(2), AlternateId(1));  // value 0.6
  const auto m2 = sim.step(1, 0.0, dep);
  EXPECT_NEAR(m2.gamma, (1.0 + 0.7 + 0.6 + 1.0) / 4.0, 1e-12);
}

TEST(Simulator, SelectivityAmplifiesDownstreamLoad) {
  Fixture f(makeDiamondDataflow());
  // Give everything plenty of cores except nothing special: branch "b"
  // has selectivity 2 so the sink sees 3x the input rate.
  for (std::uint32_t i = 0; i < 4; ++i) f.giveSmallCores(PeId(i), 4);
  Deployment dep(f.df);
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  const auto m = sim.step(0, 5.0, dep);
  EXPECT_NEAR(m.pe_stats[3].arrival_rate, 15.0, 1e-9);
  EXPECT_NEAR(m.omega, 1.0, 1e-9);
}

TEST(Simulator, ColocatedEdgeIgnoresBandwidth) {
  // A catalog with a crippled 0.1 Mbps NIC: remote edges can carry only
  // ~0.125 msg/s of 100 KB messages, but colocated PEs are unaffected.
  CloudProvider cloud(ResourceCatalog({{"tiny-nic", 4, 1.0, 0.1, 0.1}}));
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon(cloud, replayer);
  const Dataflow df = makePipeline();
  const VmId vm = cloud.acquire(ResourceClassId(0), 0.0);
  cloud.instance(vm).allocateCore(PeId(0));
  cloud.instance(vm).allocateCore(PeId(1));
  Deployment dep(df);
  DataflowSimulator sim(df, cloud, mon, {});
  const auto m = sim.step(0, 5.0, dep);
  EXPECT_NEAR(m.omega, 1.0, 1e-9);
}

TEST(Simulator, RemoteEdgeIsBandwidthCapped) {
  CloudProvider cloud(ResourceCatalog({{"tiny-nic", 1, 1.0, 0.1, 0.1}}));
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon(cloud, replayer);
  const Dataflow df = makePipeline();
  const VmId a = cloud.acquire(ResourceClassId(0), 0.0);
  const VmId b = cloud.acquire(ResourceClassId(0), 0.0);
  cloud.instance(a).allocateCore(PeId(0));
  cloud.instance(b).allocateCore(PeId(1));
  Deployment dep(df);
  DataflowSimulator sim(df, cloud, mon, {});
  const auto m = sim.step(0, 5.0, dep);
  // 0.1 Mbps / (100 KB * 8) = 0.125 msg/s reaches the sink.
  EXPECT_NEAR(m.pe_stats[1].arrival_rate, 0.125, 1e-6);
  EXPECT_LT(m.omega, 0.1);
}

TEST(Simulator, MigrationDelaysMessagesOneInterval) {
  Fixture f(makePipeline());
  f.giveSmallCores(PeId(0), 1);
  f.giveSmallCores(PeId(1), 1);
  Deployment dep(f.df);
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  (void)sim.step(0, 20.0, dep);  // source backlog: 600 msgs
  const double before = sim.backlog(PeId(0));
  sim.migrateBacklog(PeId(0), 0.5);
  EXPECT_NEAR(sim.backlog(PeId(0)), before / 2.0, 1e-9);
  // The migrated half is back in the queue (arriving) at the next step:
  // with zero input, available = 300 (kept) + 300 (in transit) = 600, of
  // which 600 can be processed at 10 msg/s * 60 s = 600.
  const auto m = sim.step(1, 0.0, dep);
  EXPECT_NEAR(m.pe_stats[0].offered_rate, 10.0, 1e-9);
  EXPECT_NEAR(sim.backlog(PeId(0)), 0.0, 1e-9);
}

TEST(Simulator, MigrationFractionValidated) {
  Fixture f(makePipeline());
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  EXPECT_THROW(sim.migrateBacklog(PeId(0), -0.1), PreconditionError);
  EXPECT_THROW(sim.migrateBacklog(PeId(0), 1.1), PreconditionError);
  EXPECT_THROW(sim.migrateBacklog(PeId(7), 0.5), PreconditionError);
}

// ---- migration downtime (pauseService) ----

TEST(Simulator, PauseConsumesServiceTimeFromTheIntervalFront) {
  Fixture f(makePipeline());
  f.giveSmallCores(PeId(0), 1);  // 10 msg/s capacity
  f.giveSmallCores(PeId(1), 1);
  Deployment dep(f.df);
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  sim.pauseService(PeId(0), 30.0);
  EXPECT_DOUBLE_EQ(sim.pauseRemaining(PeId(0)), 30.0);
  // Arrivals 10 msg/s * 60 s = 600; only 30 s of service remain, so the
  // paused source processes 300 and queues the rest.
  const auto m = sim.step(0, 10.0, dep);
  EXPECT_NEAR(m.pe_stats[0].processed_rate, 5.0, 1e-9);
  EXPECT_NEAR(sim.backlog(PeId(0)), 300.0, 1e-9);
  EXPECT_DOUBLE_EQ(sim.pauseRemaining(PeId(0)), 0.0);
  // The unpaused sink is unaffected (it only sees fewer arrivals).
  EXPECT_NEAR(m.pe_stats[1].processed_rate, 5.0, 1e-9);
}

TEST(Simulator, PausesStackAndSpanIntervals) {
  Fixture f(makePipeline());
  f.giveSmallCores(PeId(0), 1);
  f.giveSmallCores(PeId(1), 1);
  Deployment dep(f.df);
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  sim.pauseService(PeId(0), 50.0);
  sim.pauseService(PeId(0), 40.0);  // 90 s total: more than one interval
  const auto m0 = sim.step(0, 10.0, dep);
  EXPECT_NEAR(m0.pe_stats[0].processed_rate, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(sim.pauseRemaining(PeId(0)), 30.0);
  // Second interval: 30 s of pause left, 30 s of service at 10 msg/s
  // against 600 queued + 600 fresh arrivals.
  const auto m1 = sim.step(1, 10.0, dep);
  EXPECT_NEAR(m1.pe_stats[0].processed_rate, 5.0, 1e-9);
  EXPECT_NEAR(sim.backlog(PeId(0)), 900.0, 1e-9);
  EXPECT_DOUBLE_EQ(sim.pauseRemaining(PeId(0)), 0.0);
}

TEST(Simulator, ZeroPauseLeavesMetricsUntouched) {
  auto run = [](bool with_noop_pause) {
    Fixture f(makePipeline());
    f.giveSmallCores(PeId(0), 1);
    f.giveSmallCores(PeId(1), 1);
    Deployment dep(f.df);
    DataflowSimulator sim(f.df, f.cloud, f.mon, {});
    if (with_noop_pause) sim.pauseService(PeId(0), 0.0);
    return sim.step(0, 10.0, dep);
  };
  const auto a = run(false);
  const auto b = run(true);
  EXPECT_DOUBLE_EQ(a.omega, b.omega);
  for (std::size_t i = 0; i < a.pe_stats.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.pe_stats[i].processed_rate,
                     b.pe_stats[i].processed_rate);
  }
}

TEST(Simulator, PauseValidatesArguments) {
  Fixture f(makePipeline());
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  EXPECT_THROW(sim.pauseService(PeId(7), 1.0), PreconditionError);
  EXPECT_THROW(sim.pauseService(PeId(0), -1.0), PreconditionError);
  EXPECT_THROW((void)sim.pauseRemaining(PeId(7)), PreconditionError);
}

TEST(Simulator, CostTracksCloudProvider) {
  Fixture f(makePipeline());
  f.giveSmallCores(PeId(0), 1);
  f.giveSmallCores(PeId(1), 1);
  Deployment dep(f.df);
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  const auto m = sim.step(0, 1.0, dep);
  // Two m1.smalls, first (partial) hour each: $0.12.
  EXPECT_DOUBLE_EQ(m.cost_cumulative, 0.12);
  EXPECT_EQ(m.active_vms, 2);
  EXPECT_EQ(m.allocated_cores, 2);
}

TEST(Simulator, FasterCoresProcessProportionallyMore) {
  Fixture f(makePipeline());
  // m1.medium: one speed-2 core -> capacity 20 msg/s at cost 0.1.
  const VmId vm = f.cloud.acquire(ResourceClassId(1), 0.0);
  f.cloud.instance(vm).allocateCore(PeId(0));
  f.giveSmallCores(PeId(1), 2);
  Deployment dep(f.df);
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  const auto m = sim.step(0, 20.0, dep);
  EXPECT_NEAR(m.pe_stats[0].capacity_rate, 20.0, 1e-9);
  EXPECT_NEAR(m.omega, 1.0, 1e-9);
}

TEST(Simulator, DegradedCpuReducesCapacity) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer degraded({PerfTrace::constant(0.5)},
                         {PerfTrace::constant(1.0)},
                         {PerfTrace::constant(1.0)}, 0);
  MonitoringService mon(cloud, degraded);
  const Dataflow df = makePipeline();
  for (std::uint32_t pe = 0; pe < 2; ++pe) {
    const VmId vm = cloud.acquire(ResourceClassId(0), 0.0);
    cloud.instance(vm).allocateCore(PeId(pe));
  }
  Deployment dep(df);
  DataflowSimulator sim(df, cloud, mon, {});
  // Rated capacity would be 10 msg/s; at coefficient 0.5 it is 5.
  const auto m = sim.step(0, 10.0, dep);
  EXPECT_NEAR(m.pe_stats[0].capacity_rate, 5.0, 1e-9);
  EXPECT_NEAR(m.omega, 0.5, 1e-9);
}

TEST(Simulator, StepValidatesArguments) {
  Fixture f(makePipeline());
  Deployment dep(f.df);
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  EXPECT_THROW((void)sim.step(0, -1.0, dep), PreconditionError);
  const Dataflow other = makeChainDataflow(3, 1);
  Deployment wrong(other);
  EXPECT_THROW((void)sim.step(0, 1.0, wrong), PreconditionError);
}

TEST(Simulator, ConfigValidation) {
  Fixture f(makePipeline());
  SimConfig bad;
  bad.msg_size_bytes = 0.0;
  EXPECT_THROW(DataflowSimulator(f.df, f.cloud, f.mon, bad),
               PreconditionError);
  bad = {};
  bad.interval_s = 0.0;
  EXPECT_THROW(DataflowSimulator(f.df, f.cloud, f.mon, bad),
               PreconditionError);
}

class OmegaRangeTest : public ::testing::TestWithParam<double> {};

TEST_P(OmegaRangeTest, OmegaAlwaysInUnitInterval) {
  Fixture f(makePaperDataflow());
  // Deliberately unbalanced allocation.
  f.giveSmallCores(PeId(0), 1);
  f.giveSmallCores(PeId(1), 2);
  f.giveSmallCores(PeId(3), 1);
  Deployment dep(f.df);
  DataflowSimulator sim(f.df, f.cloud, f.mon, {});
  for (IntervalIndex i = 0; i < 10; ++i) {
    const auto m = sim.step(i, GetParam(), dep);
    EXPECT_GE(m.omega, 0.0);
    EXPECT_LE(m.omega, 1.0);
    EXPECT_GT(m.gamma, 0.0);
    EXPECT_LE(m.gamma, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, OmegaRangeTest,
                         ::testing::Values(0.0, 2.0, 5.0, 20.0, 50.0));

}  // namespace
}  // namespace dds
