#include "dds/common/error.hpp"

#include <gtest/gtest.h>

namespace dds {
namespace {

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(DDS_REQUIRE(1 + 1 == 2, "math"));
}

TEST(Error, RequireThrowsPreconditionError) {
  EXPECT_THROW(DDS_REQUIRE(false, "boom"), PreconditionError);
}

TEST(Error, EnsureThrowsInvariantError) {
  EXPECT_THROW(DDS_ENSURE(false, "broken"), InvariantError);
}

TEST(Error, MessageCarriesExpressionAndContext) {
  try {
    DDS_REQUIRE(2 > 3, "custom context");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 > 3"), std::string::npos);
    EXPECT_NE(msg.find("custom context"), std::string::npos);
    EXPECT_NE(msg.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, HierarchyMapsToStandardExceptions) {
  // Callers that only know <stdexcept> can still catch everything.
  EXPECT_THROW(throw PreconditionError("x"), std::invalid_argument);
  EXPECT_THROW(throw InvariantError("x"), std::logic_error);
  EXPECT_THROW(throw IoError("x"), std::runtime_error);
}

}  // namespace
}  // namespace dds
