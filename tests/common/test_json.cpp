#include "dds/common/json.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace dds {
namespace {

TEST(JsonEscape, EscapesControlQuotesAndBackslash) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.beginObject().endObject();
  EXPECT_EQ(w.str(), "{}\n");
  JsonWriter a;
  a.beginArray().endArray();
  EXPECT_EQ(a.str(), "[]\n");
}

TEST(JsonWriter, NestedDocumentIsIndentedDeterministically) {
  JsonWriter w;
  w.beginObject();
  w.key("name").value("x");
  w.key("count").value(2);
  w.key("ok").value(true);
  w.key("items").beginArray();
  w.value(1.5);
  w.null();
  w.endArray();
  w.endObject();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"name\": \"x\",\n"
            "  \"count\": 2,\n"
            "  \"ok\": true,\n"
            "  \"items\": [\n"
            "    1.5,\n"
            "    null\n"
            "  ]\n"
            "}\n");
}

TEST(JsonWriter, DoublesRoundTripShortest) {
  JsonWriter w;
  w.beginArray();
  w.value(0.1);
  w.value(1.0 / 3.0);
  w.value(42.0);
  w.endArray();
  const std::string out = w.str();
  EXPECT_NE(out.find("0.1"), std::string::npos);
  EXPECT_NE(out.find("0.333333333333333"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.beginArray();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.endArray();
  EXPECT_EQ(w.str(), "[\n  null,\n  null\n]\n");
}

TEST(JsonWriter, StrRequiresClosedContainers) {
  JsonWriter w;
  w.beginObject();
  EXPECT_THROW((void)w.str(), PreconditionError);
}

}  // namespace
}  // namespace dds
