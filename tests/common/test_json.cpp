#include "dds/common/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

namespace dds {
namespace {

TEST(JsonEscape, EscapesControlQuotesAndBackslash) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.beginObject().endObject();
  EXPECT_EQ(w.str(), "{}\n");
  JsonWriter a;
  a.beginArray().endArray();
  EXPECT_EQ(a.str(), "[]\n");
}

TEST(JsonWriter, NestedDocumentIsIndentedDeterministically) {
  JsonWriter w;
  w.beginObject();
  w.key("name").value("x");
  w.key("count").value(2);
  w.key("ok").value(true);
  w.key("items").beginArray();
  w.value(1.5);
  w.null();
  w.endArray();
  w.endObject();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"name\": \"x\",\n"
            "  \"count\": 2,\n"
            "  \"ok\": true,\n"
            "  \"items\": [\n"
            "    1.5,\n"
            "    null\n"
            "  ]\n"
            "}\n");
}

TEST(JsonWriter, DoublesRoundTripShortest) {
  JsonWriter w;
  w.beginArray();
  w.value(0.1);
  w.value(1.0 / 3.0);
  w.value(42.0);
  w.endArray();
  const std::string out = w.str();
  EXPECT_NE(out.find("0.1"), std::string::npos);
  EXPECT_NE(out.find("0.333333333333333"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.beginArray();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.endArray();
  EXPECT_EQ(w.str(), "[\n  null,\n  null\n]\n");
}

TEST(JsonWriter, StrRequiresClosedContainers) {
  JsonWriter w;
  w.beginObject();
  EXPECT_THROW((void)w.str(), PreconditionError);
}

TEST(JsonWriter, CompactStyleHasNoWhitespaceOrTrailingNewline) {
  JsonWriter w({.style = JsonWriter::Style::Compact});
  w.beginObject();
  w.key("name").value("x");
  w.key("items").beginArray();
  w.value(1.5);
  w.value(std::int64_t{2});
  w.endArray();
  w.key("ok").value(true);
  w.endObject();
  EXPECT_EQ(w.str(), "{\"name\":\"x\",\"items\":[1.5,2],\"ok\":true}");
}

TEST(JsonWriter, NonFinitePolicyStringSentinel) {
  JsonWriter w({.style = JsonWriter::Style::Compact,
                .non_finite = JsonWriter::NonFinitePolicy::StringSentinel});
  w.beginArray();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(1.0);
  w.endArray();
  EXPECT_EQ(w.str(), "[\"NaN\",\"Infinity\",\"-Infinity\",1]");
}

TEST(JsonWriter, NonFinitePolicyThrow) {
  JsonWriter w({.non_finite = JsonWriter::NonFinitePolicy::Throw});
  w.beginArray();
  EXPECT_THROW(w.value(std::numeric_limits<double>::quiet_NaN()),
               PreconditionError);
  EXPECT_THROW(w.value(std::numeric_limits<double>::infinity()),
               PreconditionError);
  w.value(2.5);  // finite values still fine after a rejected write
  w.endArray();
  EXPECT_NE(w.str().find("2.5"), std::string::npos);
}

TEST(JsonWriter, DefaultOptionsMatchLegacyOutput) {
  // Explicit defaults must be byte-compatible with the historical
  // writer so committed BENCH_*.json baselines stay stable.
  JsonWriter legacy;
  JsonWriter configured(JsonWriter::Options{});
  for (JsonWriter* w : {&legacy, &configured}) {
    w->beginObject();
    w->key("v").value(0.1);
    w->key("bad").value(std::numeric_limits<double>::quiet_NaN());
    w->endObject();
  }
  EXPECT_EQ(legacy.str(), configured.str());
  EXPECT_EQ(legacy.str(), "{\n  \"v\": 0.1,\n  \"bad\": null\n}\n");
}

TEST(JsonNumber, ShortestRoundTripAndIntegralForms) {
  EXPECT_EQ(jsonNumber(42.0), "42");
  EXPECT_EQ(jsonNumber(-3.0), "-3");
  EXPECT_EQ(jsonNumber(0.1), "0.1");
  for (const double v : {1.0 / 3.0, 0.017, 1e-9, 123456.789}) {
    double back = 0.0;
    ASSERT_EQ(std::sscanf(jsonNumber(v).c_str(), "%lf", &back), 1);
    EXPECT_EQ(back, v);
  }
}

}  // namespace
}  // namespace dds
