#include "dds/common/time.hpp"

#include <gtest/gtest.h>

#include "dds/common/error.hpp"

namespace dds {
namespace {

TEST(IntervalClock, CountsWholeIntervals) {
  const IntervalClock clock(60.0, 3600.0);
  EXPECT_EQ(clock.intervalCount(), 60);
}

TEST(IntervalClock, PartialTrailingIntervalIsDropped) {
  const IntervalClock clock(60.0, 3630.0);
  EXPECT_EQ(clock.intervalCount(), 60);
}

TEST(IntervalClock, AtLeastOneInterval) {
  const IntervalClock clock(60.0, 30.0);
  EXPECT_EQ(clock.intervalCount(), 1);
}

TEST(IntervalClock, StartEndMidAreConsistent) {
  const IntervalClock clock(120.0, 1200.0);
  EXPECT_DOUBLE_EQ(clock.startOf(0), 0.0);
  EXPECT_DOUBLE_EQ(clock.endOf(0), 120.0);
  EXPECT_DOUBLE_EQ(clock.midOf(0), 60.0);
  EXPECT_DOUBLE_EQ(clock.startOf(5), 600.0);
  EXPECT_DOUBLE_EQ(clock.endOf(5), 720.0);
}

TEST(IntervalClock, RejectsNonPositiveIntervalLength) {
  EXPECT_THROW(IntervalClock(0.0, 100.0), PreconditionError);
  EXPECT_THROW(IntervalClock(-5.0, 100.0), PreconditionError);
}

TEST(IntervalClock, RejectsNonPositiveHorizon) {
  EXPECT_THROW(IntervalClock(60.0, 0.0), PreconditionError);
}

TEST(IntervalClock, RejectsNegativeIntervalIndex) {
  const IntervalClock clock(60.0, 3600.0);
  EXPECT_THROW(clock.startOf(-1), PreconditionError);
}

TEST(TimeConstants, HourAndMinute) {
  EXPECT_DOUBLE_EQ(kSecondsPerHour, 3600.0);
  EXPECT_DOUBLE_EQ(kSecondsPerMinute, 60.0);
}

class IntervalClockParamTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(IntervalClockParamTest, IntervalsTileTheHorizon) {
  const auto [interval, horizon] = GetParam();
  const IntervalClock clock(interval, horizon);
  const IntervalIndex n = clock.intervalCount();
  EXPECT_GE(n, 1);
  // Consecutive intervals abut exactly.
  for (IntervalIndex i = 0; i + 1 < n; ++i) {
    EXPECT_DOUBLE_EQ(clock.endOf(i), clock.startOf(i + 1));
  }
  // The tiling never overruns the horizon (except the single-interval
  // minimum case).
  if (n > 1) EXPECT_LE(clock.endOf(n - 1), horizon + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, IntervalClockParamTest,
    ::testing::Values(std::pair{60.0, 3600.0}, std::pair{300.0, 36000.0},
                      std::pair{1.0, 10.0}, std::pair{7.0, 100.0},
                      std::pair{60.0, 59.0}));

}  // namespace
}  // namespace dds
