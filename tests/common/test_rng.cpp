#include "dds/common/rng.hpp"

#include <gtest/gtest.h>

#include "dds/common/stats.hpp"

namespace dds {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntStaysInClosedRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniformInt(0, 9);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 9);
    saw_lo |= (x == 0);
    saw_hi |= (x == 9);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(99);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, NormalWithZeroSdIsConstant) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.normal(3.5, 0.0), 3.5);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.03);
}

TEST(Rng, ChanceExtremesAreDeterministic) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialHasExpectedMean) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.fork();
  // The fork advanced the parent; child and parent should now differ.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(42), b(42);
  Rng ca = a.fork(), cb = b.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ca.next(), cb.next());
}

TEST(Rng, RejectsInvalidArguments) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform(2.0, 1.0), PreconditionError);
  EXPECT_THROW((void)rng.uniformInt(5, 4), PreconditionError);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), PreconditionError);
  EXPECT_THROW((void)rng.chance(1.5), PreconditionError);
  EXPECT_THROW((void)rng.chance(-0.1), PreconditionError);
  EXPECT_THROW((void)rng.exponential(0.0), PreconditionError);
}

}  // namespace
}  // namespace dds
