#include "dds/common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dds/common/rng.hpp"

namespace dds {
namespace {

TEST(RunningStats, EmptyIsZeroed) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.4);
}

TEST(RunningStats, CvZeroWhenMeanZero) {
  RunningStats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(MeanFn, BasicAndEmpty) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> xs = {4.0, 2.0, 8.0, 6.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 8.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW((void)percentile(std::vector<double>{}, 50.0),
               PreconditionError);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)percentile(xs, -1.0), PreconditionError);
  EXPECT_THROW((void)percentile(xs, 101.0), PreconditionError);
}

class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, MonotoneInP) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform(-10.0, 10.0));
  double prev = percentile(xs, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = percentile(xs, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dds
