#include "dds/common/table.hpp"

#include <gtest/gtest.h>

#include "dds/common/error.hpp"

namespace dds {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable t({"name", "value"});
  t.addRow({"x", "1"});
  t.addRow({"longer", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, ColumnsAlignToWidestCell) {
  TextTable t({"a"});
  t.addRow({"wide-cell"});
  const std::string out = t.render();
  // Header line should be padded to the width of "wide-cell".
  const auto first_newline = out.find('\n');
  EXPECT_EQ(first_newline, std::string{"wide-cell"}.size());
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), PreconditionError);
  EXPECT_THROW(t.addRow({"1", "2", "3"}), PreconditionError);
}

TEST(TextTable, TracksRowCount) {
  TextTable t({"a"});
  EXPECT_EQ(t.rowCount(), 0u);
  t.addRow({"1"});
  t.addRow({"2"});
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 3), "1.235");
  EXPECT_EQ(TextTable::num(2.0, 1), "2.0");
  EXPECT_EQ(TextTable::num(-0.5, 2), "-0.50");
}

}  // namespace
}  // namespace dds
