#include "dds/common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "dds/common/error.hpp"

namespace dds {
namespace {

TEST(Csv, ParsesHeaderAndRows) {
  const auto t = parseCsv("a,b\n1,2\n3.5,-4\n");
  ASSERT_EQ(t.header.size(), 2u);
  EXPECT_EQ(t.header[0], "a");
  EXPECT_EQ(t.header[1], "b");
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(t.rows[1][0], 3.5);
  EXPECT_DOUBLE_EQ(t.rows[1][1], -4.0);
}

TEST(Csv, SkipsCommentsAndBlankLines) {
  const auto t = parseCsv("# comment\n\na\n# another\n1\n\n2\n");
  EXPECT_EQ(t.header.size(), 1u);
  EXPECT_EQ(t.rows.size(), 2u);
}

TEST(Csv, HandlesCrLf) {
  const auto t = parseCsv("x,y\r\n1,2\r\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(t.rows[0][1], 2.0);
}

TEST(Csv, RejectsRaggedRows) {
  EXPECT_THROW((void)parseCsv("a,b\n1\n"), IoError);
  EXPECT_THROW((void)parseCsv("a\n1,2\n"), IoError);
}

TEST(Csv, RejectsNonNumericCells) {
  EXPECT_THROW((void)parseCsv("a\nhello\n"), IoError);
  EXPECT_THROW((void)parseCsv("a\n1.2.3\n"), IoError);
}

TEST(Csv, RejectsEmptyInput) {
  EXPECT_THROW((void)parseCsv(""), IoError);
  EXPECT_THROW((void)parseCsv("# only comments\n"), IoError);
}

TEST(Csv, RoundTripsThroughFormat) {
  CsvTable t;
  t.header = {"time", "value"};
  t.rows = {{0.0, 1.5}, {60.0, 2.25}};
  const auto parsed = parseCsv(formatCsv(t));
  EXPECT_EQ(parsed.header, t.header);
  ASSERT_EQ(parsed.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.rows[1][1], 2.25);
}

TEST(Csv, ColumnLookupByName) {
  const auto t = parseCsv("a,b,c\n1,2,3\n4,5,6\n");
  EXPECT_EQ(t.columnIndex("b"), 1u);
  const auto col = t.column("c");
  ASSERT_EQ(col.size(), 2u);
  EXPECT_DOUBLE_EQ(col[0], 3.0);
  EXPECT_DOUBLE_EQ(col[1], 6.0);
}

TEST(Csv, MissingColumnThrows) {
  const auto t = parseCsv("a\n1\n");
  EXPECT_THROW((void)t.column("nope"), PreconditionError);
}

TEST(Csv, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "dds_csv_test.csv").string();
  CsvTable t;
  t.header = {"k"};
  t.rows = {{42.0}};
  saveCsv(path, t);
  const auto loaded = loadCsv(path);
  ASSERT_EQ(loaded.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.rows[0][0], 42.0);
  std::remove(path.c_str());
}

TEST(Csv, LoadMissingFileThrows) {
  EXPECT_THROW((void)loadCsv("/nonexistent/dir/file.csv"), IoError);
}

TEST(Csv, SaveToUnwritablePathThrows) {
  CsvTable t;
  t.header = {"k"};
  EXPECT_THROW(saveCsv("/nonexistent/dir/file.csv", t), IoError);
}

}  // namespace
}  // namespace dds
