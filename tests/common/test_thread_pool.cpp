#include "dds/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dds {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4u);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threadCount(), ThreadPool::hardwareConcurrency());
  EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  constexpr int kTasks = 500;
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i] { return i; }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, static_cast<long long>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit(
      []() -> int { throw std::runtime_error("boom from worker"); });
  try {
    f.get();
    FAIL() << "expected the worker's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom from worker");
  }
}

TEST(ThreadPool, FailedTaskDoesNotPoisonLaterOnes) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("bad"); });
  auto good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++done;
      });
    }
    // The pool must not destruct until every queued task ran.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, TasksSubmittedFromWorkersRun) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  auto root = pool.submit([&] {
    std::vector<std::future<void>> children;
    children.reserve(8);
    for (int i = 0; i < 8; ++i) {
      children.push_back(pool.submit([&leaves] { ++leaves; }));
    }
    for (auto& c : children) c.get();
  });
  root.get();
  EXPECT_EQ(leaves.load(), 8);
}

TEST(ThreadPool, ParallelSpeedupObservableWhenMultiCore) {
  // On a single-core host this degenerates to "still correct"; on
  // multi-core CI it also exercises genuine concurrency (TSan coverage).
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&] {
      const int now = ++concurrent;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      --concurrent;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(peak.load(), 1);
  EXPECT_LE(peak.load(), 4);
}

}  // namespace
}  // namespace dds
