#include "dds/common/json_value.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "dds/common/error.hpp"
#include "dds/common/json.hpp"

namespace dds {
namespace {

TEST(JsonValueTest, ParsesScalars) {
  EXPECT_TRUE(parseJson("null").isNull());
  ASSERT_NE(parseJson("true").asBool(), nullptr);
  EXPECT_TRUE(*parseJson("true").asBool());
  EXPECT_FALSE(*parseJson("false").asBool());
  EXPECT_DOUBLE_EQ(*parseJson("42").asNumber(), 42.0);
  EXPECT_DOUBLE_EQ(*parseJson("-1.5e3").asNumber(), -1500.0);
  EXPECT_EQ(*parseJson("\"hi\"").asString(), "hi");
}

TEST(JsonValueTest, ParsesNestedContainers) {
  const JsonValue root = parseJson(R"({"a": [1, 2, {"b": "x"}], "c": null})");
  const JsonObject* obj = root.asObject();
  ASSERT_NE(obj, nullptr);
  ASSERT_EQ(obj->size(), 2u);
  const JsonValue* a = jsonFind(*obj, "a");
  ASSERT_NE(a, nullptr);
  const JsonArray* arr = a->asArray();
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->size(), 3u);
  EXPECT_DOUBLE_EQ(*(*arr)[0].asNumber(), 1.0);
  const JsonObject* inner = (*arr)[2].asObject();
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(*jsonFind(*inner, "b")->asString(), "x");
  EXPECT_TRUE(jsonFind(*obj, "c")->isNull());
  EXPECT_EQ(jsonFind(*obj, "missing"), nullptr);
}

TEST(JsonValueTest, PreservesKeyOrder) {
  const JsonValue root = parseJson(R"({"z": 1, "a": 2, "m": 3})");
  const JsonObject& obj = *root.asObject();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
}

TEST(JsonValueTest, DecodesEscapes) {
  EXPECT_EQ(*parseJson(R"("a\"b\\c\/d\n\t")").asString(), "a\"b\\c/d\n\t");
  EXPECT_EQ(*parseJson(R"("A")").asString(), "A");
}

TEST(JsonValueTest, RejectsMalformedInput) {
  EXPECT_THROW((void)parseJson(""), IoError);
  EXPECT_THROW((void)parseJson("{"), IoError);
  EXPECT_THROW((void)parseJson("[1,]"), IoError);
  EXPECT_THROW((void)parseJson("{\"a\" 1}"), IoError);
  EXPECT_THROW((void)parseJson("tru"), IoError);
  EXPECT_THROW((void)parseJson("\"unterminated"), IoError);
  EXPECT_THROW((void)parseJson("1 2"), IoError);
  EXPECT_THROW((void)parseJson("1.2.3"), IoError);
  EXPECT_THROW((void)parseJson("\"bad \\q escape\""), IoError);
}

TEST(JsonValueTest, ErrorsCarryByteOffset) {
  try {
    (void)parseJson("[1, ?]");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("offset 4"), std::string::npos)
        << e.what();
  }
}

// The reader must accept everything JsonWriter emits — the two halves
// form the round-trip used by job specs and trace records.
TEST(JsonValueTest, RoundTripsWriterOutput) {
  JsonWriter w(JsonWriter::Options{JsonWriter::Style::Compact,
                                   JsonWriter::NonFinitePolicy::Null});
  {
    w.beginObject();
    w.key("name");
    w.value("grid \"q\" \\ check");
    w.key("seed");
    w.value(static_cast<std::int64_t>(123456789));
    w.key("ratio");
    w.value(0.1);
    w.key("flags");
    w.beginArray();
    w.value(true);
    w.value(false);
    w.null();
    w.endArray();
    w.endObject();
  }
  const JsonValue root = parseJson(w.str());
  const JsonObject& obj = *root.asObject();
  EXPECT_EQ(*jsonFind(obj, "name")->asString(), "grid \"q\" \\ check");
  EXPECT_DOUBLE_EQ(*jsonFind(obj, "seed")->asNumber(), 123456789.0);
  EXPECT_DOUBLE_EQ(*jsonFind(obj, "ratio")->asNumber(), 0.1);
  const JsonArray& flags = *jsonFind(obj, "flags")->asArray();
  ASSERT_EQ(flags.size(), 3u);
  EXPECT_TRUE(*flags[0].asBool());
  EXPECT_FALSE(*flags[1].asBool());
  EXPECT_TRUE(flags[2].isNull());
}

// jsonNumber's shortest-round-trip doubles must survive parse exactly.
TEST(JsonValueTest, ExactDoubleRoundTrip) {
  for (const double d : {0.1, 1.0 / 3.0, 6.02e23, 5e-324, 1e308, -0.0}) {
    const JsonValue v = parseJson(jsonNumber(d));
    ASSERT_NE(v.asNumber(), nullptr);
    EXPECT_EQ(*v.asNumber(), d) << jsonNumber(d);
  }
}

}  // namespace
}  // namespace dds
