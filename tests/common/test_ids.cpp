#include "dds/common/ids.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace dds {
namespace {

TEST(StrongId, DefaultConstructsToZero) {
  EXPECT_EQ(PeId{}.value(), 0u);
  EXPECT_EQ(VmId{}.value(), 0u);
}

TEST(StrongId, StoresValue) {
  const PeId id(42);
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongId, EqualityComparesValues) {
  EXPECT_EQ(PeId(3), PeId(3));
  EXPECT_NE(PeId(3), PeId(4));
}

TEST(StrongId, OrderingComparesValues) {
  EXPECT_LT(PeId(1), PeId(2));
  EXPECT_GT(VmId(9), VmId(3));
  EXPECT_LE(AlternateId(5), AlternateId(5));
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<PeId, VmId>);
  static_assert(!std::is_same_v<AlternateId, ResourceClassId>);
}

TEST(StrongId, StreamsAsNumber) {
  std::ostringstream os;
  os << PeId(7);
  EXPECT_EQ(os.str(), "7");
}

TEST(StrongId, HashableInUnorderedContainers) {
  std::unordered_set<VmId> set;
  set.insert(VmId(1));
  set.insert(VmId(2));
  set.insert(VmId(1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(VmId(2)));
  EXPECT_FALSE(set.contains(VmId(3)));
}

}  // namespace
}  // namespace dds
