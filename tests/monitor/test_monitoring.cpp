#include "dds/monitor/monitoring.hpp"

#include <gtest/gtest.h>

namespace dds {
namespace {

struct Fixture {
  CloudProvider cloud{awsCatalog2013()};
  TraceReplayer ideal = TraceReplayer::ideal();
};

TEST(Monitoring, RatedCorePowerMatchesClassSpec) {
  Fixture f;
  MonitoringService mon(f.cloud, f.ideal);
  const VmId small = f.cloud.acquire(f.cloud.catalog().byName("m1.small"), 0.0);
  const VmId xl = f.cloud.acquire(f.cloud.catalog().byName("m1.xlarge"), 0.0);
  EXPECT_DOUBLE_EQ(mon.ratedCorePower(small), 1.0);
  EXPECT_DOUBLE_EQ(mon.ratedCorePower(xl), 2.0);
}

TEST(Monitoring, ObservedEqualsRatedUnderIdealReplay) {
  Fixture f;
  MonitoringService mon(f.cloud, f.ideal);
  const VmId vm = f.cloud.acquire(ResourceClassId(1), 0.0);
  EXPECT_DOUBLE_EQ(mon.observedCorePower(vm, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(mon.observedCorePower(vm, 7200.0), 2.0);
}

TEST(Monitoring, ObservedScalesWithTraceCoefficient) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer degraded({PerfTrace::constant(0.5)},
                         {PerfTrace::constant(1.0)},
                         {PerfTrace::constant(1.0)}, 0);
  MonitoringService mon(cloud, degraded);
  const VmId vm = cloud.acquire(ResourceClassId(1), 0.0);  // rated 2.0
  EXPECT_DOUBLE_EQ(mon.observedCorePower(vm, 100.0), 1.0);
}

TEST(Monitoring, ColocatedTransfersAreFree) {
  Fixture f;
  MonitoringService mon(f.cloud, f.ideal);
  const VmId vm = f.cloud.acquire(ResourceClassId(0), 0.0);
  EXPECT_TRUE(std::isinf(mon.ratedBandwidthMbps(vm, vm)));
  EXPECT_TRUE(std::isinf(mon.observedBandwidthMbps(vm, vm, 50.0)));
  EXPECT_DOUBLE_EQ(mon.observedLatencyMs(vm, vm, 50.0), 0.0);
}

TEST(Monitoring, RatedBandwidthIsPairwiseMin) {
  CloudProvider cloud(ResourceCatalog({
      {"slow-nic", 1, 1.0, 50.0, 0.1},
      {"fast-nic", 1, 1.0, 1000.0, 0.2},
  }));
  TraceReplayer ideal = TraceReplayer::ideal();
  MonitoringService mon(cloud, ideal);
  const VmId a = cloud.acquire(ResourceClassId(0), 0.0);
  const VmId b = cloud.acquire(ResourceClassId(1), 0.0);
  EXPECT_DOUBLE_EQ(mon.ratedBandwidthMbps(a, b), 50.0);
}

TEST(Monitoring, ObservedBandwidthAppliesCoefficient) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer dip({PerfTrace::constant(1.0)}, {PerfTrace::constant(1.0)},
                    {PerfTrace::constant(0.4)}, 0);
  MonitoringService mon(cloud, dip);
  const VmId a = cloud.acquire(ResourceClassId(0), 0.0);
  const VmId b = cloud.acquire(ResourceClassId(0), 0.0);
  EXPECT_DOUBLE_EQ(mon.observedBandwidthMbps(a, b, 10.0), 40.0);
}

TEST(Monitoring, LatencyUsesBaseTimesCoefficient) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer spike({PerfTrace::constant(1.0)},
                      {PerfTrace::constant(3.0)},
                      {PerfTrace::constant(1.0)}, 0);
  MonitoringService mon(cloud, spike);
  const VmId a = cloud.acquire(ResourceClassId(0), 0.0);
  const VmId b = cloud.acquire(ResourceClassId(0), 0.0);
  EXPECT_DOUBLE_EQ(mon.observedLatencyMs(a, b, 10.0),
                   MonitoringService::kBaseLatencyMs * 3.0);
}

}  // namespace
}  // namespace dds
