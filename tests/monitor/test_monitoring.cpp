#include "dds/monitor/monitoring.hpp"

#include <gtest/gtest.h>

namespace dds {
namespace {

struct Fixture {
  CloudProvider cloud{awsCatalog2013()};
  TraceReplayer ideal = TraceReplayer::ideal();
};

TEST(Monitoring, RatedCorePowerMatchesClassSpec) {
  Fixture f;
  MonitoringService mon(f.cloud, f.ideal);
  const VmId small = f.cloud.acquire(f.cloud.catalog().byName("m1.small"), 0.0);
  const VmId xl = f.cloud.acquire(f.cloud.catalog().byName("m1.xlarge"), 0.0);
  EXPECT_DOUBLE_EQ(mon.ratedCorePower(small), 1.0);
  EXPECT_DOUBLE_EQ(mon.ratedCorePower(xl), 2.0);
}

TEST(Monitoring, ObservedEqualsRatedUnderIdealReplay) {
  Fixture f;
  MonitoringService mon(f.cloud, f.ideal);
  const VmId vm = f.cloud.acquire(ResourceClassId(1), 0.0);
  EXPECT_DOUBLE_EQ(mon.observedCorePower(vm, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(mon.observedCorePower(vm, 7200.0), 2.0);
}

TEST(Monitoring, ObservedScalesWithTraceCoefficient) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer degraded({PerfTrace::constant(0.5)},
                         {PerfTrace::constant(1.0)},
                         {PerfTrace::constant(1.0)}, 0);
  MonitoringService mon(cloud, degraded);
  const VmId vm = cloud.acquire(ResourceClassId(1), 0.0);  // rated 2.0
  EXPECT_DOUBLE_EQ(mon.observedCorePower(vm, 100.0), 1.0);
}

TEST(Monitoring, ColocatedTransfersAreFree) {
  Fixture f;
  MonitoringService mon(f.cloud, f.ideal);
  const VmId vm = f.cloud.acquire(ResourceClassId(0), 0.0);
  EXPECT_TRUE(std::isinf(mon.ratedBandwidthMbps(vm, vm)));
  EXPECT_TRUE(std::isinf(mon.observedBandwidthMbps(vm, vm, 50.0)));
  EXPECT_DOUBLE_EQ(mon.observedLatencyMs(vm, vm, 50.0), 0.0);
}

TEST(Monitoring, RatedBandwidthIsPairwiseMin) {
  CloudProvider cloud(ResourceCatalog({
      {"slow-nic", 1, 1.0, 50.0, 0.1},
      {"fast-nic", 1, 1.0, 1000.0, 0.2},
  }));
  TraceReplayer ideal = TraceReplayer::ideal();
  MonitoringService mon(cloud, ideal);
  const VmId a = cloud.acquire(ResourceClassId(0), 0.0);
  const VmId b = cloud.acquire(ResourceClassId(1), 0.0);
  EXPECT_DOUBLE_EQ(mon.ratedBandwidthMbps(a, b), 50.0);
}

TEST(Monitoring, ObservedBandwidthAppliesCoefficient) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer dip({PerfTrace::constant(1.0)}, {PerfTrace::constant(1.0)},
                    {PerfTrace::constant(0.4)}, 0);
  MonitoringService mon(cloud, dip);
  const VmId a = cloud.acquire(ResourceClassId(0), 0.0);
  const VmId b = cloud.acquire(ResourceClassId(0), 0.0);
  EXPECT_DOUBLE_EQ(mon.observedBandwidthMbps(a, b, 10.0), 40.0);
}

TEST(Monitoring, LatencyUsesBaseTimesCoefficient) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer spike({PerfTrace::constant(1.0)},
                      {PerfTrace::constant(3.0)},
                      {PerfTrace::constant(1.0)}, 0);
  MonitoringService mon(cloud, spike);
  const VmId a = cloud.acquire(ResourceClassId(0), 0.0);
  const VmId b = cloud.acquire(ResourceClassId(0), 0.0);
  EXPECT_DOUBLE_EQ(mon.observedLatencyMs(a, b, 10.0),
                   MonitoringService::kBaseLatencyMs * 3.0);
}

/// Perf-fault stub: VM 0 runs at 40% from t >= 100; the link (0, 1) is
/// partitioned on 200 <= t < 300.
class StubFaults final : public PerfFaultModel {
 public:
  [[nodiscard]] double cpuFactor(VmId vm, SimTime,
                                 SimTime t) const override {
    return vm == VmId(0) && t >= 100.0 ? 0.4 : 1.0;
  }
  [[nodiscard]] bool linkPartitioned(VmId a, VmId b,
                                     SimTime t) const override {
    const bool pair = (a == VmId(0) && b == VmId(1)) ||
                      (a == VmId(1) && b == VmId(0));
    return pair && t >= 200.0 && t < 300.0;
  }
};

TEST(Monitoring, StragglerFactorScalesObservedPower) {
  Fixture f;
  const StubFaults faults;
  MonitoringService mon(f.cloud, f.ideal, nullptr, &faults);
  const VmId vm = f.cloud.acquire(f.cloud.catalog().byName("m1.medium"), 0.0);
  EXPECT_DOUBLE_EQ(mon.observedCorePower(vm, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(mon.observedCorePower(vm, 150.0), 2.0 * 0.4);
}

TEST(Monitoring, PartitionZeroesBandwidthAndCeilsLatency) {
  Fixture f;
  const StubFaults faults;
  MonitoringService mon(f.cloud, f.ideal, nullptr, &faults);
  const VmId a = f.cloud.acquire(ResourceClassId(0), 0.0);
  const VmId b = f.cloud.acquire(ResourceClassId(0), 0.0);

  EXPECT_FALSE(mon.linkPartitioned(a, b, 150.0));
  EXPECT_DOUBLE_EQ(mon.observedBandwidthMbps(a, b, 150.0), 100.0);

  EXPECT_TRUE(mon.linkPartitioned(a, b, 250.0));
  EXPECT_DOUBLE_EQ(mon.observedBandwidthMbps(a, b, 250.0), 0.0);
  EXPECT_DOUBLE_EQ(mon.observedLatencyMs(a, b, 250.0),
                   MonitoringService::kPartitionLatencyMs);
  // Colocated traffic never partitions.
  EXPECT_FALSE(mon.linkPartitioned(a, a, 250.0));
  EXPECT_DOUBLE_EQ(mon.observedLatencyMs(a, a, 250.0), 0.0);

  EXPECT_FALSE(mon.linkPartitioned(a, b, 350.0));
  EXPECT_DOUBLE_EQ(mon.observedBandwidthMbps(a, b, 350.0), 100.0);
}

TEST(Monitoring, ProvisioningVmObservesZeroPowerUntilReady) {
  Fixture f;
  class Delay final : public AcquisitionFaultModel {
   public:
    [[nodiscard]] bool acquisitionRejected(std::uint64_t) const override {
      return false;
    }
    [[nodiscard]] SimTime provisioningDelay(
        VmId, const ResourceClass&) const override {
      return 250.0;
    }
  };
  const Delay delay;
  f.cloud.setAcquisitionFaults(&delay);
  MonitoringService mon(f.cloud, f.ideal);
  const auto got = f.cloud.tryAcquire(ResourceClassId(0), 0.0);
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(mon.observedCorePower(got.vm, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(mon.observedCorePower(got.vm, 250.0), 1.0);
}

}  // namespace
}  // namespace dds
