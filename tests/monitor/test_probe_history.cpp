#include "dds/monitor/probe_history.hpp"

#include <gtest/gtest.h>

#include "dds/common/stats.hpp"

#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"

namespace dds {
namespace {

TEST(ProbeHistory, RejectsBadAlpha) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer ideal = TraceReplayer::ideal();
  MonitoringService mon(cloud, ideal);
  EXPECT_THROW(ProbeHistory(mon, 0.0), PreconditionError);
  EXPECT_THROW(ProbeHistory(mon, 1.5), PreconditionError);
  EXPECT_NO_THROW(ProbeHistory(mon, 1.0));
}

TEST(ProbeHistory, UnprobedVmFallsBackToRated) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer degraded({PerfTrace::constant(0.5)},
                         {PerfTrace::constant(1.0)},
                         {PerfTrace::constant(1.0)}, 0);
  MonitoringService mon(cloud, degraded);
  const VmId vm = cloud.acquire(ResourceClassId(1), 0.0);  // rated 2.0
  const ProbeHistory probes(mon, 0.3);
  EXPECT_DOUBLE_EQ(probes.smoothedCorePower(vm), 2.0);
}

TEST(ProbeHistory, FirstProbeSeedsWithObservation) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer degraded({PerfTrace::constant(0.5)},
                         {PerfTrace::constant(1.0)},
                         {PerfTrace::constant(1.0)}, 0);
  MonitoringService mon(cloud, degraded);
  const VmId vm = cloud.acquire(ResourceClassId(1), 0.0);
  ProbeHistory probes(mon, 0.3);
  probes.probe(0.0);
  EXPECT_EQ(probes.probeCount(), 1u);
  EXPECT_DOUBLE_EQ(probes.smoothedCorePower(vm), 1.0);  // 2.0 * 0.5
}

TEST(ProbeHistory, EwmaMatchesManualRecurrence) {
  // The replayer assigns each VM a random replay window, so verify the
  // EWMA against a manually maintained recurrence over whatever the
  // observations actually are.
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer replayer = TraceReplayer::futureGridLike(3);
  MonitoringService mon(cloud, replayer);
  const VmId vm = cloud.acquire(ResourceClassId(1), 0.0);
  const double alpha = 0.25;
  ProbeHistory probes(mon, alpha);

  probes.probe(0.0);
  double expected = mon.observedCorePower(vm, 0.0);
  EXPECT_DOUBLE_EQ(probes.smoothedCorePower(vm), expected);
  for (int i = 1; i <= 50; ++i) {
    const SimTime t = i * 300.0;
    probes.probe(t);
    expected = alpha * mon.observedCorePower(vm, t) +
               (1.0 - alpha) * expected;
    EXPECT_NEAR(probes.smoothedCorePower(vm), expected, 1e-12) << i;
  }
}

TEST(ProbeHistory, SmoothedIsLessVolatileThanRaw) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer replayer = TraceReplayer::futureGridLike(9);
  MonitoringService mon(cloud, replayer);
  const VmId vm = cloud.acquire(ResourceClassId(0), 0.0);
  ProbeHistory probes(mon, 0.2);
  RunningStats raw, smooth;
  for (int i = 0; i < 500; ++i) {
    const SimTime t = i * 300.0;
    probes.probe(t);
    raw.add(mon.observedCorePower(vm, t));
    smooth.add(probes.smoothedCorePower(vm));
  }
  EXPECT_LT(smooth.stddev(), raw.stddev());
}

TEST(ProbeHistory, AlphaOneTracksRawObservations) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer replayer = TraceReplayer::futureGridLike(5);
  MonitoringService mon(cloud, replayer);
  const VmId vm = cloud.acquire(ResourceClassId(0), 0.0);
  ProbeHistory probes(mon, 1.0);
  for (int i = 0; i < 10; ++i) {
    const SimTime t = i * 300.0;
    probes.probe(t);
    EXPECT_DOUBLE_EQ(probes.smoothedCorePower(vm),
                     mon.observedCorePower(vm, t));
  }
}

TEST(ProbeHistory, RejectsTimeGoingBackwards) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer ideal = TraceReplayer::ideal();
  MonitoringService mon(cloud, ideal);
  ProbeHistory probes(mon, 0.5);
  probes.probe(100.0);
  EXPECT_THROW(probes.probe(50.0), PreconditionError);
}

TEST(ProbeHistory, SmoothedEngineRunStillMeetsConstraint) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  cfg.workload.infra_variability = true;
  cfg.power_smoothing_alpha = 0.3;
  const auto r = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  EXPECT_TRUE(r.constraint_met) << r.average_omega;
}

TEST(ProbeHistory, EngineValidatesAlpha) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.power_smoothing_alpha = 0.0;
  EXPECT_THROW(SimulationEngine(df, cfg), PreconditionError);
  cfg.power_smoothing_alpha = 1.2;
  EXPECT_THROW(SimulationEngine(df, cfg), PreconditionError);
}

}  // namespace
}  // namespace dds
