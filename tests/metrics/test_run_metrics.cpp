#include "dds/metrics/run_metrics.hpp"

#include <gtest/gtest.h>

namespace dds {
namespace {

IntervalMetrics interval(IntervalIndex i, double omega, double gamma,
                         double cost) {
  IntervalMetrics m;
  m.index = i;
  m.omega = omega;
  m.gamma = gamma;
  m.cost_cumulative = cost;
  return m;
}

TEST(RunResult, EmptyAggregates) {
  const RunResult r;
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.averageOmega(), 0.0);
  EXPECT_DOUBLE_EQ(r.averageGamma(), 0.0);
  EXPECT_DOUBLE_EQ(r.totalCost(), 0.0);
}

TEST(RunResult, AveragesOverIntervals) {
  RunResult r;
  r.add(interval(0, 1.0, 0.8, 0.1));
  r.add(interval(1, 0.5, 1.0, 0.2));
  EXPECT_DOUBLE_EQ(r.averageOmega(), 0.75);
  EXPECT_DOUBLE_EQ(r.averageGamma(), 0.9);
}

TEST(RunResult, TotalCostIsFinalCumulative) {
  RunResult r;
  r.add(interval(0, 1.0, 1.0, 0.5));
  r.add(interval(1, 1.0, 1.0, 1.25));
  EXPECT_DOUBLE_EQ(r.totalCost(), 1.25);
}

TEST(RunResult, ThetaIsGammaMinusSigmaCost) {
  RunResult r;
  r.add(interval(0, 1.0, 0.9, 2.0));
  // Theta = 0.9 - 0.1 * 2.0 = 0.7.
  EXPECT_DOUBLE_EQ(r.theta(0.1), 0.7);
  // Sigma 0 ignores cost entirely.
  EXPECT_DOUBLE_EQ(r.theta(0.0), 0.9);
}

TEST(RunResult, ConstraintCheckUsesTolerance) {
  RunResult r;
  r.add(interval(0, 0.67, 1.0, 0.0));
  EXPECT_TRUE(r.meetsThroughputConstraint(0.7, 0.05));
  EXPECT_FALSE(r.meetsThroughputConstraint(0.7, 0.01));
  EXPECT_TRUE(r.meetsThroughputConstraint(0.67, 0.0));
}

TEST(EquivalenceFactor, MatchesDefinition) {
  // sigma = (1.0 - 0.6) / (100 - 25) dollars^-1.
  EXPECT_DOUBLE_EQ(equivalenceFactor(1.0, 0.6, 100.0, 25.0), 0.4 / 75.0);
}

TEST(EquivalenceFactor, RejectsDegenerateRanges) {
  EXPECT_THROW((void)equivalenceFactor(1.0, 1.0, 100.0, 25.0),
               PreconditionError);
  EXPECT_THROW((void)equivalenceFactor(1.0, 0.5, 25.0, 25.0),
               PreconditionError);
  EXPECT_THROW((void)equivalenceFactor(0.5, 1.0, 100.0, 25.0),
               PreconditionError);
}

TEST(EvaluationAcceptableCost, AnchorsFromThePaper) {
  // §8.2: $4/hour at 2 msg/s, $100/hour at 50 msg/s.
  EXPECT_DOUBLE_EQ(evaluationAcceptableCost(2.0, kSecondsPerHour), 4.0);
  EXPECT_DOUBLE_EQ(evaluationAcceptableCost(50.0, kSecondsPerHour), 100.0);
}

TEST(EvaluationAcceptableCost, LinearInRateAndHorizon) {
  // Midpoint rate 26 msg/s -> $52/hour.
  EXPECT_DOUBLE_EQ(evaluationAcceptableCost(26.0, kSecondsPerHour), 52.0);
  // Ten hours costs ten times one hour.
  EXPECT_DOUBLE_EQ(evaluationAcceptableCost(10.0, 10 * kSecondsPerHour),
                   10.0 * evaluationAcceptableCost(10.0, kSecondsPerHour));
}

TEST(EvaluationAcceptableCost, RejectsBadInput) {
  EXPECT_THROW((void)evaluationAcceptableCost(0.0, 3600.0),
               PreconditionError);
  EXPECT_THROW((void)evaluationAcceptableCost(5.0, 0.0), PreconditionError);
}

RunResult omegaSeries(std::initializer_list<double> omegas) {
  RunResult r;
  IntervalIndex i = 0;
  for (const double w : omegas) r.add(interval(i++, w, w, 0.0));
  return r;
}

TEST(RecoveryStats, CleanRunHasNoEpisodes) {
  const auto s =
      computeRecoveryStats(omegaSeries({0.9, 0.8, 1.0}), 0.7, 60.0);
  EXPECT_EQ(s.violation_episodes, 0);
  EXPECT_EQ(s.unrecovered_episodes, 0);
  EXPECT_DOUBLE_EQ(s.mttr_s, 0.0);
  EXPECT_DOUBLE_EQ(s.longest_episode_s, 0.0);
  EXPECT_DOUBLE_EQ(s.availability, 1.0);
}

TEST(RecoveryStats, CountsMaximalViolationRuns) {
  // Two episodes: lengths 2 and 1 (recovered), availability 5/8.
  const auto s = computeRecoveryStats(
      omegaSeries({0.9, 0.5, 0.6, 0.8, 0.9, 0.3, 0.8, 0.9}), 0.7, 60.0);
  EXPECT_EQ(s.violation_episodes, 2);
  EXPECT_EQ(s.unrecovered_episodes, 0);
  EXPECT_DOUBLE_EQ(s.mttr_s, (2.0 + 1.0) / 2.0 * 60.0);
  EXPECT_DOUBLE_EQ(s.longest_episode_s, 2.0 * 60.0);
  EXPECT_DOUBLE_EQ(s.availability, 5.0 / 8.0);
}

TEST(RecoveryStats, OpenEpisodeAtHorizonCountsAsUnrecovered) {
  const auto s =
      computeRecoveryStats(omegaSeries({0.9, 0.9, 0.4, 0.4}), 0.7, 60.0);
  EXPECT_EQ(s.violation_episodes, 1);
  EXPECT_EQ(s.unrecovered_episodes, 1);
  // MTTR averages recovered episodes only — none here.
  EXPECT_DOUBLE_EQ(s.mttr_s, 0.0);
  EXPECT_DOUBLE_EQ(s.longest_episode_s, 2.0 * 60.0);
  EXPECT_DOUBLE_EQ(s.availability, 0.5);
}

TEST(RecoveryStats, EmptyRunIsFullyAvailable) {
  const auto s = computeRecoveryStats(RunResult{}, 0.7, 60.0);
  EXPECT_EQ(s.violation_episodes, 0);
  EXPECT_DOUBLE_EQ(s.availability, 1.0);
}

class ThetaMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(ThetaMonotonicityTest, ThetaDecreasesWithSigma) {
  RunResult r;
  r.add(interval(0, 1.0, 0.9, GetParam()));
  double prev = r.theta(0.0);
  for (double sigma = 0.01; sigma <= 0.1; sigma += 0.01) {
    const double cur = r.theta(sigma);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Costs, ThetaMonotonicityTest,
                         ::testing::Values(0.0, 1.0, 5.0, 42.0));

}  // namespace
}  // namespace dds
