// Property-based sweeps over randomized graphs, rates and seeds, checking
// the invariants the rest of the system relies on:
//  * conservation: a simulator step never processes more than was offered,
//    and backlog accounts exactly for the difference;
//  * packing safety: repacking preserves every PE's core count and rated
//    power, and never over-commits a VM's cores;
//  * convergence: incremental allocation terminates and meets its target
//    on arbitrary layered DAGs;
//  * determinism: deployments and whole runs are bit-reproducible.
#include <gtest/gtest.h>

#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/sched/heuristic_scheduler.hpp"
#include "dds/sim/rate_model.hpp"

namespace dds {
namespace {

class RandomGraphTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Dataflow randomGraph() {
    Rng rng(GetParam());
    const auto layers =
        static_cast<std::size_t>(3 + rng.uniformInt(0, 3));
    const auto width = static_cast<std::size_t>(1 + rng.uniformInt(0, 3));
    const auto alts = static_cast<std::size_t>(1 + rng.uniformInt(0, 2));
    return makeLayeredDataflow(layers, width, alts, rng);
  }
};

TEST_P(RandomGraphTest, SimulatorConservesMessages) {
  const Dataflow df = randomGraph();
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer replayer = TraceReplayer::futureGridLike(GetParam());
  MonitoringService mon(cloud, replayer);
  SchedulerEnv env;
  env.dataflow = &df;
  env.cloud = &cloud;
  env.monitor = &mon;
  HeuristicScheduler sched(env, Strategy::Global);
  Deployment dep = sched.deploy(8.0);

  SimConfig cfg;
  DataflowSimulator sim(df, cloud, mon, cfg);
  Rng rate_rng(GetParam() ^ 0xfeed);
  for (IntervalIndex i = 0; i < 20; ++i) {
    const double rate = rate_rng.uniform(0.0, 20.0);
    const auto m = sim.step(i, rate, dep);
    for (std::size_t p = 0; p < df.peCount(); ++p) {
      const auto& st = m.pe_stats[p];
      // Processed never exceeds offered or capacity.
      EXPECT_LE(st.processed_rate, st.offered_rate + 1e-9);
      EXPECT_LE(st.processed_rate, st.capacity_rate + 1e-9);
      // Backlog is exactly the unprocessed remainder of this interval.
      EXPECT_NEAR(st.backlog_msgs,
                  (st.offered_rate - st.processed_rate) * cfg.interval_s,
                  1e-6);
      EXPECT_GE(st.backlog_msgs, -1e-9);
    }
    EXPECT_GE(m.omega, 0.0);
    EXPECT_LE(m.omega, 1.0);
  }
}

TEST_P(RandomGraphTest, DeploymentIsDeterministic) {
  const Dataflow df = randomGraph();
  auto deployOnce = [&df](std::vector<int>& cores_out) {
    CloudProvider cloud(awsCatalog2013());
    TraceReplayer replayer = TraceReplayer::ideal();
    MonitoringService mon(cloud, replayer);
    SchedulerEnv env;
    env.dataflow = &df;
    env.cloud = &cloud;
    env.monitor = &mon;
    HeuristicScheduler sched(env, Strategy::Global);
    const Deployment dep = sched.deploy(10.0);
    std::vector<AlternateId> alts;
    for (std::size_t i = 0; i < df.peCount(); ++i) {
      const PeId id(static_cast<PeId::value_type>(i));
      alts.push_back(dep.activeAlternate(id));
      cores_out.push_back(totalCores(cloud, id));
    }
    return alts;
  };
  std::vector<int> cores_a, cores_b;
  const auto alts_a = deployOnce(cores_a);
  const auto alts_b = deployOnce(cores_b);
  EXPECT_EQ(alts_a, alts_b);
  EXPECT_EQ(cores_a, cores_b);
}

TEST_P(RandomGraphTest, IncrementalAllocationConvergesAndMeetsTarget) {
  const Dataflow df = randomGraph();
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon(cloud, replayer);
  Deployment dep(df);
  ResourceAllocator alloc(df, cloud, 0.7);
  Rng rng(GetParam() ^ 0xabc);
  const double rate = rng.uniform(1.0, 40.0);
  alloc.ensureMinimumCores(0.0);
  alloc.scaleOut(dep, rate, ratedCorePowerFn(cloud), 0.0, Strategy::Global);
  const auto proj = projectThroughput(
      df, dep, rate, alloc.allocatedPower(ratedCorePowerFn(cloud)));
  EXPECT_GE(proj.omega, 0.7 - 1e-9) << "rate " << rate;
}

TEST_P(RandomGraphTest, RepackingPreservesCapacityAndCoreCounts) {
  const Dataflow df = randomGraph();
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon(cloud, replayer);
  Deployment dep(df);
  ResourceAllocator alloc(df, cloud, 0.7);
  alloc.ensureMinimumCores(0.0);
  alloc.scaleOut(dep, 12.0, ratedCorePowerFn(cloud), 0.0, Strategy::Local);

  std::vector<int> cores_before;
  std::vector<double> power_before;
  for (std::size_t i = 0; i < df.peCount(); ++i) {
    const PeId id(static_cast<PeId::value_type>(i));
    cores_before.push_back(totalCores(cloud, id));
    power_before.push_back(ratedPowerOf(cloud, id));
  }
  alloc.repackFreeVms(ratedCorePowerFn(cloud));
  for (std::size_t i = 0; i < df.peCount(); ++i) {
    const PeId id(static_cast<PeId::value_type>(i));
    EXPECT_EQ(totalCores(cloud, id), cores_before[i]) << "PE " << i;
    EXPECT_GE(ratedPowerOf(cloud, id), power_before[i] - 1e-9) << "PE " << i;
  }
  // No VM ever over-commits its cores.
  for (const VmId vm : cloud.activeVms()) {
    EXPECT_LE(cloud.instance(vm).allocatedCoreCount(),
              cloud.instance(vm).coreCount());
  }
}

TEST_P(RandomGraphTest, FullRunsAreReproducible) {
  const Dataflow df = randomGraph();
  ExperimentConfig cfg;
  cfg.horizon_s = 20.0 * kSecondsPerMinute;
  cfg.workload.mean_rate = 6.0;
  cfg.workload.profile = ProfileKind::RandomWalk;
  cfg.workload.infra_variability = true;
  cfg.seed = GetParam();
  const auto a = SimulationEngine(df, cfg).run(SchedulerKind::LocalAdaptive);
  const auto b = SimulationEngine(df, cfg).run(SchedulerKind::LocalAdaptive);
  ASSERT_EQ(a.run.intervals().size(), b.run.intervals().size());
  for (std::size_t i = 0; i < a.run.intervals().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.run.intervals()[i].omega, b.run.intervals()[i].omega);
    EXPECT_DOUBLE_EQ(a.run.intervals()[i].cost_cumulative,
                     b.run.intervals()[i].cost_cumulative);
  }
}

TEST_P(RandomGraphTest, GammaAlwaysMatchesActiveAlternates) {
  const Dataflow df = randomGraph();
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon(cloud, replayer);
  Deployment dep(df);
  Rng rng(GetParam());
  // Randomize alternate choices.
  double expected_gamma = 0.0;
  for (const auto& pe : df.pes()) {
    const auto j = static_cast<AlternateId::value_type>(rng.uniformInt(
        0, static_cast<std::int64_t>(pe.alternateCount()) - 1));
    dep.setActiveAlternate(pe.id(), AlternateId(j));
    expected_gamma += pe.relativeValue(AlternateId(j));
  }
  expected_gamma /= static_cast<double>(df.peCount());
  DataflowSimulator sim(df, cloud, mon, {});
  const auto m = sim.step(0, 1.0, dep);
  EXPECT_NEAR(m.gamma, expected_gamma, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace dds
