// Cross-simulator property sweeps: the fluid and event backends are two
// independent implementations of the same model. On random graphs, random
// deployments and random rates their steady-state throughput must agree —
// a strong mutual-consistency oracle neither implementation can satisfy
// by accident.
#include <gtest/gtest.h>

#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/eventsim/event_simulator.hpp"
#include "dds/sim/simulator.hpp"

namespace dds {
namespace {

class CrossSimTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossSimTest, FixedDeploymentThroughputAgrees) {
  Rng rng(GetParam());
  const auto layers = static_cast<std::size_t>(2 + rng.uniformInt(0, 2));
  const auto width = static_cast<std::size_t>(1 + rng.uniformInt(0, 2));
  const Dataflow df = makeLayeredDataflow(layers, width, 2, rng);
  const double rate = rng.uniform(2.0, 12.0);

  // A random (but identical) static allocation for both simulators:
  // 1-3 small cores per PE.
  std::vector<int> cores(df.peCount());
  for (auto& c : cores) c = static_cast<int>(rng.uniformInt(1, 3));

  auto allocate = [&df, &cores](CloudProvider& cloud) {
    for (std::size_t i = 0; i < df.peCount(); ++i) {
      for (int k = 0; k < cores[i]; ++k) {
        const VmId vm = cloud.acquire(ResourceClassId(0), 0.0);
        cloud.instance(vm).allocateCore(
            PeId(static_cast<PeId::value_type>(i)));
      }
    }
  };

  // Fluid.
  CloudProvider fluid_cloud(awsCatalog2013());
  TraceReplayer fluid_replayer = TraceReplayer::ideal();
  MonitoringService fluid_mon(fluid_cloud, fluid_replayer);
  allocate(fluid_cloud);
  DataflowSimulator fsim(df, fluid_cloud, fluid_mon, {});
  Deployment fdep(df);
  double fluid_omega = 0.0;
  for (IntervalIndex i = 0; i < 20; ++i) {
    fluid_omega += fsim.step(i, rate, fdep).omega;
  }
  fluid_omega /= 20.0;

  // Event.
  CloudProvider ev_cloud(awsCatalog2013());
  TraceReplayer ev_replayer = TraceReplayer::ideal();
  MonitoringService ev_mon(ev_cloud, ev_replayer);
  allocate(ev_cloud);
  EventSimConfig cfg;
  cfg.horizon_s = 1200.0;
  cfg.poisson_arrivals = false;
  EventSimulator esim(df, ev_cloud, ev_mon, cfg);
  Deployment edep(df);
  const auto er = esim.run(ConstantRate(rate), edep, nullptr);

  EXPECT_NEAR(er.intervals.averageOmega(), fluid_omega, 0.12)
      << "graph " << df.name() << " rate " << rate;
}

TEST_P(CrossSimTest, EngineBackendsAgreeUnderAdaptation) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = 30.0 * kSecondsPerMinute;
  cfg.workload.mean_rate = 4.0 + static_cast<double>(GetParam() % 5) * 3.0;
  cfg.seed = GetParam();
  cfg.backend = SimBackend::Fluid;
  const auto fluid =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  cfg.backend = SimBackend::Event;
  const auto event =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  // Adaptation closes the loop differently (message granularity, Poisson
  // noise), so the band is wider than the fixed-deployment case.
  EXPECT_NEAR(event.average_omega, fluid.average_omega, 0.18);
  EXPECT_EQ(event.constraint_met, true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSimTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace dds
