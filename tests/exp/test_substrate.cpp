#include "dds/exp/substrate.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dds/common/time.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/exp/campaign.hpp"

namespace dds {
namespace {

ExperimentConfig variedConfig() {
  ExperimentConfig cfg;
  cfg.horizon_s = 0.5 * kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;
  cfg.seed = 31;
  return cfg;
}

void expectSameRun(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.scheduler_name, b.scheduler_name);
  EXPECT_EQ(a.average_omega, b.average_omega);
  EXPECT_EQ(a.average_gamma, b.average_gamma);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.theta, b.theta);
  EXPECT_EQ(a.peak_vms, b.peak_vms);
  EXPECT_EQ(a.peak_cores, b.peak_cores);
  ASSERT_EQ(a.run.intervals().size(), b.run.intervals().size());
  for (std::size_t i = 0; i < a.run.intervals().size(); ++i) {
    EXPECT_EQ(a.run.intervals()[i].omega, b.run.intervals()[i].omega);
    EXPECT_EQ(a.run.intervals()[i].cost_cumulative,
              b.run.intervals()[i].cost_cumulative);
  }
}

TEST(Substrate, ArenasAreSharedNotRebuilt) {
  Substrate substrate;
  const Dataflow df = makePaperDataflow();
  const ExperimentConfig cfg = variedConfig();

  const EngineArenas first = substrate.arenasFor(df, cfg);
  const EngineArenas second = substrate.arenasFor(df, cfg);
  ASSERT_NE(first.catalog, nullptr);
  ASSERT_NE(first.trace_pools, nullptr);
  ASSERT_NE(first.plan_structure, nullptr);
  // Same immutable objects, not equal copies.
  EXPECT_EQ(first.catalog.get(), second.catalog.get());
  EXPECT_EQ(first.trace_pools.get(), second.trace_pools.get());
  EXPECT_EQ(first.plan_structure.get(), second.plan_structure.get());

  const Substrate::Stats stats = substrate.stats();
  EXPECT_EQ(stats.catalog_builds, 1u);
  EXPECT_EQ(stats.catalog_hits, 1u);
  EXPECT_EQ(stats.pool_builds, 1u);
  EXPECT_EQ(stats.pool_hits, 1u);
  EXPECT_EQ(stats.plan_builds, 1u);
  EXPECT_EQ(stats.plan_hits, 1u);

  // A different seed needs different trace pools but the same catalog
  // and plan closure.
  ExperimentConfig other = cfg;
  other.seed = 32;
  const EngineArenas third = substrate.arenasFor(df, other);
  EXPECT_EQ(third.catalog.get(), first.catalog.get());
  EXPECT_NE(third.trace_pools.get(), first.trace_pools.get());
  EXPECT_EQ(third.plan_structure.get(), first.plan_structure.get());
}

TEST(Substrate, FluidLayoutSharedAcrossJobsOfOneGraph) {
  Substrate substrate;
  const Dataflow df = makePaperDataflow();
  const ExperimentConfig cfg = variedConfig();

  const EngineArenas first = substrate.arenasFor(df, cfg);
  const EngineArenas second = substrate.arenasFor(df, cfg);
  ASSERT_NE(first.fluid_layout, nullptr);
  EXPECT_EQ(first.fluid_layout.get(), second.fluid_layout.get());
  EXPECT_EQ(substrate.stats().fluid_layout_builds, 1u);
  EXPECT_EQ(substrate.stats().fluid_layout_hits, 1u);

  // The reference engine bypasses the cached kernel, so no layout is
  // attached (and none is built for it).
  ExperimentConfig reference = cfg;
  reference.fluid_reference_engine = true;
  EXPECT_EQ(substrate.arenasFor(df, reference).fluid_layout, nullptr);
  EXPECT_EQ(substrate.stats().fluid_layout_builds, 1u);

  // A different graph gets its own layout.
  const Dataflow other = makeDiamondDataflow();
  const EngineArenas third = substrate.arenasFor(other, cfg);
  ASSERT_NE(third.fluid_layout, nullptr);
  EXPECT_NE(third.fluid_layout.get(), first.fluid_layout.get());
  EXPECT_EQ(substrate.stats().fluid_layout_builds, 2u);
}

TEST(Substrate, GraphCacheSharesByNameAndLength) {
  Substrate substrate;
  EXPECT_EQ(substrate.graphFor("paper", 4).get(),
            substrate.graphFor("paper", 9).get());  // length ignored
  EXPECT_EQ(substrate.graphFor("chain", 4).get(),
            substrate.graphFor("chain", 4).get());
  EXPECT_NE(substrate.graphFor("chain", 4).get(),
            substrate.graphFor("chain", 5).get());
  EXPECT_THROW(substrate.graphFor("torus", 4), PreconditionError);
}

TEST(Substrate, ArenaRunsAreBitIdenticalToStandalone) {
  // The whole substrate contract: an engine consuming shared arenas is
  // indistinguishable from one building its own. Exercised with spot
  // pricing (catalog twin), trace replay (shared pools) and the planner
  // closure all active.
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg = variedConfig();
  cfg.elasticity.spot_discount = 0.6;
  cfg.elasticity.spot_preemption_mtbf_h = 2.0;

  Substrate substrate;
  for (const auto kind :
       {SchedulerKind::GlobalAdaptive, SchedulerKind::LocalAdaptive}) {
    const SimulationEngine standalone(df, cfg);
    const SimulationEngine shared(df, cfg, substrate.arenasFor(df, cfg));
    expectSameRun(standalone.run(kind), shared.run(kind));
  }
}

TEST(Substrate, ConcurrentJobsDoNotPerturbSiblings) {
  // COW isolation: every job's result fingerprint must be independent of
  // which other jobs run beside it on the same substrate. Reference
  // fingerprints come from fresh single-job substrates; the probe runs
  // all jobs concurrently against ONE substrate (also the TSan target).
  const Dataflow df = makePaperDataflow();
  std::vector<ExperimentJob> jobs;
  for (std::uint64_t seed = 60; seed < 64; ++seed) {
    ExperimentConfig cfg = variedConfig();
    cfg.seed = seed;
    cfg.workload.mean_rate = 6.0 + 2.0 * static_cast<double>(seed - 60);
    jobs.push_back({&df, cfg,
                    seed % 2 == 0 ? SchedulerKind::GlobalAdaptive
                                  : SchedulerKind::LocalAdaptive,
                    "", ""});
  }

  std::vector<JobOutcome> isolated;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Substrate fresh;
    isolated.push_back(runExperimentJob(jobs[i], i, &fresh));
  }

  Substrate shared;
  std::vector<JobOutcome> together(jobs.size());
  {
    std::vector<std::thread> threads;
    threads.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      threads.emplace_back([&, i]() {
        together[i] = runExperimentJob(jobs[i], i, &shared);
      });
    }
    for (auto& t : threads) t.join();
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(isolated[i].ok) << isolated[i].error;
    ASSERT_TRUE(together[i].ok) << together[i].error;
    expectSameRun(isolated[i].result, together[i].result);
  }
  // The shared substrate actually shared: one catalog and one plan
  // closure across all four jobs, pools per distinct seed.
  const Substrate::Stats stats = shared.stats();
  EXPECT_EQ(stats.catalog_builds, 1u);
  EXPECT_EQ(stats.plan_builds, 1u);
  EXPECT_EQ(stats.pool_builds, 4u);
}

}  // namespace
}  // namespace dds
