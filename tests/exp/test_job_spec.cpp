#include "dds/exp/job_spec.hpp"

#include <gtest/gtest.h>

#include <string>

#include "dds/common/time.hpp"

namespace dds {
namespace {

TEST(JobSpec, ParsesFullSpec) {
  const JobSpec spec = parseJobSpec(
      R"({"v": 1, "tenant": "team-a", "label": "baseline",)"
      R"( "graph": "chain", "chain_length": 6, "scheduler": "local",)"
      R"( "config": {"seed": 7, "workload.mean_rate": 12.5,)"
      R"( "workload.infra_variability": true, "catalog": "mixed"}})");
  EXPECT_EQ(spec.tenant, "team-a");
  EXPECT_EQ(spec.label, "baseline");
  EXPECT_EQ(spec.graph, "chain");
  EXPECT_EQ(spec.chain_length, 6u);
  EXPECT_EQ(spec.scheduler, "local");
  ASSERT_EQ(spec.config.size(), 4u);
  EXPECT_EQ(spec.config[0].first, "seed");
  EXPECT_EQ(spec.config[1].second.number, 12.5);
  EXPECT_TRUE(spec.config[2].second.boolean);
  EXPECT_EQ(spec.config[3].second.text, "mixed");
}

TEST(JobSpec, DefaultsApplyWhenFieldsAbsent) {
  const JobSpec spec = parseJobSpec(R"({"v": 1})");
  EXPECT_EQ(spec.graph, "paper");
  EXPECT_EQ(spec.scheduler, "global");
  EXPECT_TRUE(spec.tenant.empty());
  EXPECT_TRUE(spec.config.empty());
}

TEST(JobSpec, SerializationRoundTrips) {
  const std::string line =
      R"({"v": 1, "tenant": "t", "graph": "chain", "chain_length": 3,)"
      R"( "scheduler": "global",)"
      R"( "config": {"workload.mean_rate": 0.1, "seed": 5,)"
      R"( "workload.infra_variability": true, "catalog": "m3"}})";
  const JobSpec spec = parseJobSpec(line);
  const std::string json = spec.toJson();
  const JobSpec again = parseJobSpec(json);
  // Round trip is the identity: same serialized form, same fields.
  EXPECT_EQ(again.toJson(), json);
  EXPECT_EQ(again.tenant, spec.tenant);
  EXPECT_EQ(again.graph, spec.graph);
  EXPECT_EQ(again.chain_length, spec.chain_length);
  EXPECT_EQ(again.scheduler, spec.scheduler);
  ASSERT_EQ(again.config.size(), spec.config.size());
  for (std::size_t i = 0; i < spec.config.size(); ++i) {
    EXPECT_EQ(again.config[i].first, spec.config[i].first);
    EXPECT_EQ(static_cast<int>(again.config[i].second.kind),
              static_cast<int>(spec.config[i].second.kind));
  }
}

TEST(JobSpec, RejectsUnknownTopLevelField) {
  EXPECT_THROW(parseJobSpec(R"({"v": 1, "grahp": "paper"})"), ConfigError);
  EXPECT_THROW(parseJobSpec(R"({"v": 1, "priority": 3})"), ConfigError);
  try {
    parseJobSpec(R"({"v": 1, "grahp": "paper"})");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("grahp"), std::string::npos);
  }
}

TEST(JobSpec, RejectsVersionMismatch) {
  EXPECT_THROW(parseJobSpec(R"({"v": 2})"), ConfigError);
  EXPECT_THROW(parseJobSpec(R"({"v": 0})"), ConfigError);
  EXPECT_THROW(parseJobSpec(R"({"graph": "paper"})"), ConfigError);  // no v
  EXPECT_THROW(parseJobSpec(R"({"v": "1"})"), ConfigError);  // wrong type
  EXPECT_THROW(parseJobSpec(R"({"v": 1.5})"), ConfigError);  // not integral
}

TEST(JobSpec, RejectsMalformedJsonAndWrongShapes) {
  EXPECT_THROW(parseJobSpec("not json"), ConfigError);
  EXPECT_THROW(parseJobSpec(R"([1, 2])"), ConfigError);  // not an object
  EXPECT_THROW(parseJobSpec(R"({"v": 1, "graph": 7})"), ConfigError);
  EXPECT_THROW(parseJobSpec(R"({"v": 1, "config": []})"), ConfigError);
  EXPECT_THROW(parseJobSpec(R"({"v": 1, "chain_length": 0})"), ConfigError);
  EXPECT_THROW(parseJobSpec(R"({"v": 1, "config": {"seed": null}})"),
               ConfigError);
}

TEST(JobSpec, RejectsReservedConfigKeys) {
  for (const std::string key :
       {"graph", "chain_length", "scheduler", "output_csv", "config_schema"}) {
    const std::string line =
        R"({"v": 1, "config": {")" + key + R"(": "x"}})";
    EXPECT_THROW(parseJobSpec(line), ConfigError) << key;
  }
}

TEST(JobSpec, ExperimentResolutionIsStrict) {
  // Unknown config keys are rejected...
  JobSpec unknown = parseJobSpec(
      R"({"v": 1, "config": {"workload.maen_rate": 5}})");
  EXPECT_THROW(experimentFromSpec(unknown), ConfigError);
  // ...and so are deprecated flat aliases — specs always parse strictly,
  // naming the canonical replacement.
  JobSpec deprecated = parseJobSpec(R"({"v": 1, "config": {"mean_rate": 5}})");
  try {
    experimentFromSpec(deprecated);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("workload.mean_rate"),
              std::string::npos);
  }
}

TEST(JobSpec, ConfigValuesSurviveResolutionExactly) {
  // Doubles pass through jsonNumber -> from_chars without rounding.
  const double rate = 0.1 + 0.2;  // 0.30000000000000004
  const JobSpec spec = parseJobSpec(
      R"({"v": 1, "scheduler": "local", "config":)"
      R"( {"workload.mean_rate": 0.30000000000000004, "seed": 12345,)"
      R"( "horizon_h": 0.25, "workload.infra_variability": true}})");
  const CliExperiment ex = experimentFromSpec(spec);
  EXPECT_EQ(ex.config.workload.mean_rate, rate);
  EXPECT_EQ(ex.config.seed, 12345u);
  EXPECT_EQ(ex.config.horizon_s, 0.25 * kSecondsPerHour);
  EXPECT_TRUE(ex.config.workload.infra_variability);
  ASSERT_EQ(ex.schedulers.size(), 1u);
  EXPECT_EQ(ex.schedulers[0], SchedulerKind::LocalAdaptive);
}

TEST(JobSpec, BadSchedulerOrGraphFailResolution) {
  EXPECT_THROW(
      experimentFromSpec(parseJobSpec(R"({"v": 1, "scheduler": "bogus"})")),
      ConfigError);
  EXPECT_THROW(
      experimentFromSpec(parseJobSpec(R"({"v": 1, "graph": "torus"})")),
      ConfigError);
}

}  // namespace
}  // namespace dds
