#include "dds/exp/serve.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace dds {
namespace {

std::string specLine(std::uint64_t seed, const std::string& scheduler) {
  return R"({"v": 1, "tenant": "t", "scheduler": ")" + scheduler +
         R"(", "config": {"seed": )" + std::to_string(seed) +
         R"(, "horizon_h": 0.25, "workload.mean_rate": 8}})";
}

std::string serveAll(const std::string& input, const ServeOptions& options,
                     ServeStats* stats = nullptr) {
  std::istringstream in(input);
  std::ostringstream out;
  const ServeStats s = serveCampaign(in, out, options);
  if (stats != nullptr) *stats = s;
  return out.str();
}

TEST(Serve, StreamsOneRecordPerSpecInOrder) {
  std::string input;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    input += specLine(seed, "global") + "\n";
  }
  ServeStats stats;
  const std::string out = serveAll(input, {.jobs = 1}, &stats);
  EXPECT_EQ(stats.specs, 3u);
  EXPECT_EQ(stats.ok, 3u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected, 0u);

  std::istringstream lines(out);
  std::string line;
  std::size_t i = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"index\":" + std::to_string(i)), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
    ++i;
  }
  EXPECT_EQ(i, 3u);
}

TEST(Serve, RecordsCarryNoTimingFields) {
  const std::string out = serveAll(specLine(1, "global") + "\n", {.jobs = 1});
  EXPECT_EQ(out.find("wall_s"), std::string::npos);
}

TEST(Serve, ParallelStreamIsByteIdenticalToSerial) {
  // The serve-mode oracle: same records, same bytes, any worker count,
  // any backpressure window — including rejected lines interleaved.
  std::string input;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    input += specLine(seed, seed % 2 == 0 ? "global" : "local") + "\n";
  }
  input += "{\"v\": 2}\n";   // rejected: bad version
  input += "\n";              // blank: skipped entirely
  input += specLine(9, "global") + "\n";
  input += "garbage\n";      // rejected: not JSON

  const std::string serial = serveAll(input, {.jobs = 1});
  const std::string parallel = serveAll(input, {.jobs = 4});
  const std::string tight = serveAll(input, {.jobs = 3, .queue = 1});
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, tight);
}

TEST(Serve, RejectedLinesGetErrorRecordsAtTheirIndex) {
  const std::string input = specLine(0, "global") + "\n" +
                            "{\"v\": 1, \"nope\": true}\n" +
                            specLine(2, "global") + "\n";
  ServeStats stats;
  const std::string out = serveAll(input, {.jobs = 2}, &stats);
  EXPECT_EQ(stats.specs, 3u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.rejected, 1u);

  std::vector<std::string> lines;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[1].find("\"index\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"rejected\":true"), std::string::npos);
  EXPECT_NE(lines[1].find("nope"), std::string::npos);
  EXPECT_NE(lines[2].find("\"index\":2"), std::string::npos);
  EXPECT_NE(lines[2].find("\"ok\":true"), std::string::npos);
}

TEST(Serve, JobFailuresAreInBandRecords) {
  // An intractable job fails while running (not a rejection): the
  // stream carries ok:false with the error, and later records follow.
  const std::string brute =
      R"({"v": 1, "scheduler": "brute-force-static", "config":)"
      R"( {"horizon_h": 0.25, "workload.mean_rate": 50}})";
  const std::string input = brute + "\n" + specLine(1, "global") + "\n";
  ServeStats stats;
  const std::string out = serveAll(input, {.jobs = 2}, &stats);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_NE(out.find("\"ok\":false"), std::string::npos);
  EXPECT_EQ(out.find("\"rejected\""), std::string::npos);
}

TEST(Serve, SharedSubstrateAmortizesAcrossStreams) {
  const auto substrate = std::make_shared<Substrate>();
  ServeOptions options;
  options.jobs = 1;
  options.substrate = substrate;
  const std::string first = serveAll(specLine(5, "global") + "\n", options);
  const std::string second = serveAll(specLine(5, "global") + "\n", options);
  EXPECT_EQ(first, second);
  const Substrate::Stats stats = substrate->stats();
  EXPECT_EQ(stats.catalog_builds, 1u);
  EXPECT_GE(stats.catalog_hits, 1u);
  EXPECT_EQ(stats.graph_builds, 1u);
  EXPECT_GE(stats.graph_hits, 1u);
}

}  // namespace
}  // namespace dds
