#include "dds/exp/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dds/common/error.hpp"
#include "dds/common/time.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/exp/replication.hpp"

namespace dds {
namespace {

ExperimentConfig shortConfig() {
  ExperimentConfig cfg;
  cfg.horizon_s = 0.5 * kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;
  cfg.seed = 77;
  return cfg;
}

/// Every metric the campaign exports, compared exactly: the parallel
/// runner must be BIT-identical to serial, not merely close.
void expectIdentical(const JobOutcome& a, const JobOutcome& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.result.scheduler_name, b.result.scheduler_name);
  EXPECT_EQ(a.result.average_omega, b.result.average_omega);
  EXPECT_EQ(a.result.average_gamma, b.result.average_gamma);
  EXPECT_EQ(a.result.total_cost, b.result.total_cost);
  EXPECT_EQ(a.result.theta, b.result.theta);
  EXPECT_EQ(a.result.constraint_met, b.result.constraint_met);
  EXPECT_EQ(a.result.peak_vms, b.result.peak_vms);
  EXPECT_EQ(a.result.peak_cores, b.result.peak_cores);
  EXPECT_EQ(a.result.run.intervals().size(), b.result.run.intervals().size());
  for (std::size_t i = 0; i < a.result.run.intervals().size(); ++i) {
    EXPECT_EQ(a.result.run.intervals()[i].omega,
              b.result.run.intervals()[i].omega);
    EXPECT_EQ(a.result.run.intervals()[i].cost_cumulative,
              b.result.run.intervals()[i].cost_cumulative);
  }
}

TEST(Campaign, AddValidatesJobs) {
  Campaign campaign;
  EXPECT_THROW(campaign.add({nullptr, shortConfig(),
                             SchedulerKind::GlobalAdaptive, "", ""}),
               PreconditionError);
  ExperimentConfig bad = shortConfig();
  bad.horizon_s = -1.0;
  const Dataflow df = makePaperDataflow();
  EXPECT_THROW(
      campaign.add({&df, bad, SchedulerKind::GlobalAdaptive, "", ""}),
      PreconditionError);
  EXPECT_TRUE(campaign.empty());
}

TEST(Campaign, SeedSweepDerivesSequentialSeeds) {
  const Dataflow df = makePaperDataflow();
  Campaign campaign;
  campaign.addSeedSweep(df, shortConfig(), SchedulerKind::LocalAdaptive, 4);
  ASSERT_EQ(campaign.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(campaign.jobs()[i].config.seed, 77u + i);
  }
}

TEST(Campaign, ParallelIsBitIdenticalToSerial) {
  const Dataflow df = makePaperDataflow();
  // >= 2 policies x >= 4 seeds, as one grid.
  Campaign campaign;
  for (const auto kind :
       {SchedulerKind::GlobalAdaptive, SchedulerKind::LocalAdaptive}) {
    campaign.addSeedSweep(df, shortConfig(), kind, 4);
  }
  ASSERT_EQ(campaign.size(), 8u);

  const CampaignResult serial = runCampaign(campaign, {.jobs = 1});
  const CampaignResult parallel = runCampaign(campaign, {.jobs = 4});
  EXPECT_EQ(serial.jobs_used, 1u);
  EXPECT_EQ(parallel.jobs_used, 4u);
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    expectIdentical(serial.outcomes[i], parallel.outcomes[i]);
  }
}

TEST(Campaign, OutcomesStayInSubmissionOrder) {
  const Dataflow df = makePaperDataflow();
  Campaign campaign;
  campaign.addPolicySweep(df, shortConfig(),
                          {SchedulerKind::GlobalAdaptive,
                           SchedulerKind::LocalAdaptive,
                           SchedulerKind::GlobalStatic});
  const CampaignResult res = runCampaign(campaign, {.jobs = 3});
  ASSERT_EQ(res.outcomes.size(), 3u);
  EXPECT_EQ(res.outcomes[0].kind, SchedulerKind::GlobalAdaptive);
  EXPECT_EQ(res.outcomes[1].kind, SchedulerKind::LocalAdaptive);
  EXPECT_EQ(res.outcomes[2].kind, SchedulerKind::GlobalStatic);
  for (std::size_t i = 0; i < res.outcomes.size(); ++i) {
    EXPECT_EQ(res.outcomes[i].index, i);
    EXPECT_TRUE(res.outcomes[i].ok) << res.outcomes[i].error;
  }
}

TEST(Campaign, JobFailureIsCapturedNotFatal) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg = shortConfig();
  cfg.workload.mean_rate = 50.0;  // makes brute force intractable
  Campaign campaign;
  campaign.addPolicySweep(
      df, cfg,
      {SchedulerKind::BruteForceStatic, SchedulerKind::LocalAdaptive});
  const CampaignResult res = runCampaign(campaign, {.jobs = 2});
  ASSERT_EQ(res.outcomes.size(), 2u);
  EXPECT_FALSE(res.outcomes[0].ok);
  EXPECT_FALSE(res.outcomes[0].error.empty());
  EXPECT_TRUE(res.outcomes[1].ok) << res.outcomes[1].error;
  EXPECT_EQ(res.failureCount(), 1u);
  EXPECT_THROW(res.throwIfAnyFailed(), PreconditionError);
}

TEST(Campaign, ConfigInterningCollapsesSeedSweeps) {
  const Dataflow df = makePaperDataflow();
  Campaign campaign;
  campaign.addSeedSweep(df, shortConfig(), SchedulerKind::GlobalAdaptive, 50);
  campaign.addSeedSweep(df, shortConfig(), SchedulerKind::LocalAdaptive, 50);
  // 100 jobs, one distinct config: seeds are deltas, policies are
  // per-entry fields, the base is interned once.
  EXPECT_EQ(campaign.size(), 100u);
  EXPECT_EQ(campaign.distinctConfigCount(), 1u);

  // A genuinely different config gets its own base...
  ExperimentConfig other = shortConfig();
  other.workload.mean_rate = 20.0;
  campaign.addSeedSweep(df, other, SchedulerKind::GlobalAdaptive, 10);
  EXPECT_EQ(campaign.distinctConfigCount(), 2u);
  // ...and materialized jobs still carry their own seeds.
  EXPECT_EQ(campaign.job(0).config.seed, 77u);
  EXPECT_EQ(campaign.job(49).config.seed, 77u + 49);
  EXPECT_EQ(campaign.job(100).config.workload.mean_rate, 20.0);
}

TEST(Campaign, InterningDoesNotChangeCampaignJson) {
  // The dedup redesign must be invisible in the output: a grid built
  // from wholesale config copies and the same grid built via spec
  // deltas produce byte-identical campaign JSON (timing stripped, which
  // is the only nondeterministic part).
  const Dataflow df = makePaperDataflow();
  Campaign copies;
  for (std::size_t i = 0; i < 4; ++i) {
    ExperimentConfig cfg = shortConfig();
    cfg.seed = 101 + i;
    copies.add({&df, cfg, SchedulerKind::GlobalAdaptive, "", ""});
  }
  Campaign deltas;
  ExperimentConfig base = shortConfig();
  base.seed = 101;
  deltas.addSeedSweep(df, base, SchedulerKind::GlobalAdaptive, 4);
  EXPECT_EQ(deltas.distinctConfigCount(), 1u);

  // Same worker count on both sides: jobs_used is a header field, and
  // parallel-vs-serial invariance is covered elsewhere.
  const CampaignResult a = runCampaign(copies, {.jobs = 2});
  const CampaignResult b = runCampaign(deltas, {.jobs = 2});
  const CampaignJsonOptions no_timing{.include_timing = false};
  EXPECT_EQ(campaignJson(a, "grid", no_timing),
            campaignJson(b, "grid", no_timing));
  EXPECT_EQ(campaignJsonl(a), campaignJsonl(b));
}

TEST(Campaign, TimingFreeJsonStripsThroughputGauges) {
  // fluid.intervals_per_s (and every *_per_s gauge) is a wall-clock
  // measurement; the timing-free document must neither carry it nor
  // depend on it, while the deterministic rebuild counter stays.
  const Dataflow df = makePaperDataflow();
  Campaign campaign;
  ExperimentConfig cfg = shortConfig();
  campaign.add({&df, cfg, SchedulerKind::GlobalAdaptive, "", ""});
  const CampaignResult result = runCampaign(campaign, {.jobs = 1});
  result.throwIfAnyFailed();

  const std::string timed = campaignJson(result, "grid");
  const std::string timing_free =
      campaignJson(result, "grid", {.include_timing = false});
  EXPECT_NE(timed.find("fluid.intervals_per_s"), std::string::npos);
  EXPECT_EQ(timing_free.find("fluid.intervals_per_s"), std::string::npos);
  EXPECT_EQ(timing_free.find("_per_s"), std::string::npos);
  EXPECT_NE(timing_free.find("fluid.kernel_rebuilds"), std::string::npos);
}

TEST(Campaign, AddSpecResolvesAgainstSubstrate) {
  Campaign campaign;
  const JobSpec spec = parseJobSpec(
      R"({"v": 1, "tenant": "team-a", "graph": "diamond",)"
      R"( "scheduler": "local", "config": {"seed": 9, "horizon_h": 0.5}})");
  const std::size_t index = campaign.addSpec(spec);
  EXPECT_EQ(index, 0u);
  const ExperimentJob job = campaign.job(0);
  EXPECT_EQ(job.kind, SchedulerKind::LocalAdaptive);
  EXPECT_EQ(job.tenant, "team-a");
  EXPECT_EQ(job.config.seed, 9u);
  EXPECT_EQ(job.config.horizon_s, 0.5 * kSecondsPerHour);
  ASSERT_NE(job.dataflow, nullptr);
  EXPECT_EQ(job.dataflow->name(), "diamond");

  const CampaignResult res = runCampaign(campaign, {.jobs = 1});
  ASSERT_EQ(res.outcomes.size(), 1u);
  EXPECT_TRUE(res.outcomes[0].ok) << res.outcomes[0].error;
  EXPECT_EQ(res.outcomes[0].tenant, "team-a");
}

TEST(Campaign, JsonExportIsWellFormedAndDeterministic) {
  const Dataflow df = makePaperDataflow();
  Campaign campaign;
  campaign.addPolicySweep(df, shortConfig(),
                          {SchedulerKind::GlobalAdaptive});
  const CampaignResult res = runCampaign(campaign, {.jobs = 1});
  const std::string a = campaignJson(res, "unit");
  EXPECT_NE(a.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(a.find("\"runs\": ["), std::string::npos);
  EXPECT_NE(a.find("\"scheduler\": \"global\""), std::string::npos);
  // Same outcomes -> same document, byte for byte (wall_s differs between
  // runs, so re-serialize the same result instead of re-running).
  EXPECT_EQ(a, campaignJson(res, "unit"));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Campaign, TracePathsDeriveFromLabels) {
  const Dataflow df = makePaperDataflow();
  Campaign campaign;
  campaign.addPolicySweep(df, shortConfig(),
                          {SchedulerKind::GlobalAdaptive,
                           SchedulerKind::LocalAdaptive});
  campaign.addSeedSweep(df, shortConfig(), SchedulerKind::GlobalAdaptive, 2);
  campaign.setTracePaths("base.jsonl");
  // Unique labels get `base.<label>`; the duplicated `global` label is
  // disambiguated with the submission index.
  EXPECT_EQ(campaign.jobs()[0].trace_path, "base.jsonl.global.0");
  EXPECT_EQ(campaign.jobs()[1].trace_path, "base.jsonl.local");
  EXPECT_EQ(campaign.jobs()[2].trace_path, "base.jsonl.global.2");
  EXPECT_EQ(campaign.jobs()[3].trace_path, "base.jsonl.global.3");

  Campaign single;
  single.addPolicySweep(df, shortConfig(), {SchedulerKind::GlobalAdaptive});
  single.setTracePaths("only.jsonl");
  EXPECT_EQ(single.jobs()[0].trace_path, "only.jsonl");
}

TEST(Campaign, TraceFilesAreByteIdenticalAtAnyJobCount) {
  const Dataflow df = makePaperDataflow();
  const std::string dir = ::testing::TempDir();
  const std::vector<SchedulerKind> kinds = {SchedulerKind::GlobalAdaptive,
                                            SchedulerKind::LocalAdaptive,
                                            SchedulerKind::GlobalStatic};

  const auto runWith = [&](const std::string& base, std::size_t jobs) {
    Campaign campaign;
    campaign.addPolicySweep(df, shortConfig(), kinds);
    campaign.setTracePaths(dir + base);
    runCampaign(campaign, {.jobs = jobs}).throwIfAnyFailed();
    std::vector<std::string> contents;
    for (const auto& job : campaign.jobs()) {
      contents.push_back(slurp(job.trace_path));
      EXPECT_FALSE(contents.back().empty()) << job.trace_path;
    }
    return contents;
  };

  const auto serial = runWith("serial.jsonl", 1);
  const auto parallel = runWith("parallel.jsonl", 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "trace " << i;
  }
}

TEST(Replication, ParallelMatchesSerial) {
  const Dataflow df = makePaperDataflow();
  const ExperimentConfig cfg = shortConfig();
  const auto serial =
      runReplicated(df, cfg, SchedulerKind::GlobalAdaptive, 5, /*jobs=*/1);
  const auto parallel =
      runReplicated(df, cfg, SchedulerKind::GlobalAdaptive, 5, /*jobs=*/4);
  EXPECT_EQ(serial.scheduler_name, parallel.scheduler_name);
  EXPECT_EQ(serial.omega.mean(), parallel.omega.mean());
  EXPECT_EQ(serial.omega.stddev(), parallel.omega.stddev());
  EXPECT_EQ(serial.cost.mean(), parallel.cost.mean());
  EXPECT_EQ(serial.theta.mean(), parallel.theta.mean());
  EXPECT_EQ(serial.successRate(), parallel.successRate());
}

}  // namespace
}  // namespace dds
