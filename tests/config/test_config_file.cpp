#include "dds/config/config_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace dds {
namespace {

TEST(KeyValueConfig, ParsesPairsCommentsAndBlanks) {
  const auto kv = KeyValueConfig::parse(
      "# header comment\n"
      "mean_rate = 12.5\n"
      "\n"
      "graph= paper   # trailing comment\n"
      "infra_variability =true\n");
  EXPECT_TRUE(kv.has("mean_rate"));
  EXPECT_DOUBLE_EQ(kv.getDouble("mean_rate", 0.0), 12.5);
  EXPECT_EQ(kv.getString("graph", ""), "paper");
  EXPECT_TRUE(kv.getBool("infra_variability", false));
  EXPECT_FALSE(kv.has("absent"));
}

TEST(KeyValueConfig, FallbacksWhenAbsent) {
  const auto kv = KeyValueConfig::parse("a = 1\n");
  EXPECT_DOUBLE_EQ(kv.getDouble("missing", 7.5), 7.5);
  EXPECT_EQ(kv.getInt("missing", 3), 3);
  EXPECT_EQ(kv.getString("missing", "x"), "x");
  EXPECT_TRUE(kv.getBool("missing", true));
  EXPECT_TRUE(kv.getList("missing").empty());
}

TEST(KeyValueConfig, RejectsMalformedLines) {
  EXPECT_THROW((void)KeyValueConfig::parse("no equals sign\n"), IoError);
  EXPECT_THROW((void)KeyValueConfig::parse("= value\n"), IoError);
}

TEST(KeyValueConfig, RejectsBadConversions) {
  const auto kv = KeyValueConfig::parse(
      "num = abc\nint = 1.5\nflag = maybe\n");
  EXPECT_THROW((void)kv.getDouble("num", 0.0), PreconditionError);
  EXPECT_THROW((void)kv.getInt("int", 0), PreconditionError);
  EXPECT_THROW((void)kv.getBool("flag", false), PreconditionError);
}

TEST(KeyValueConfig, BoolSynonyms) {
  const auto kv = KeyValueConfig::parse(
      "a = yes\nb = ON\nc = 0\nd = False\n");
  EXPECT_TRUE(kv.getBool("a", false));
  EXPECT_TRUE(kv.getBool("b", false));
  EXPECT_FALSE(kv.getBool("c", true));
  EXPECT_FALSE(kv.getBool("d", true));
}

TEST(KeyValueConfig, ListsSplitOnCommas) {
  const auto kv = KeyValueConfig::parse("s = global, local ,brute-force-static\n");
  const auto items = kv.getList("s");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], "global");
  EXPECT_EQ(items[1], "local");
  EXPECT_EQ(items[2], "brute-force-static");
}

TEST(KeyValueConfig, LastDuplicateWins) {
  const auto kv = KeyValueConfig::parse("k = 1\nk = 2\n");
  EXPECT_EQ(kv.getInt("k", 0), 2);
}

TEST(KeyValueConfig, LoadMissingFileThrows) {
  EXPECT_THROW((void)KeyValueConfig::load("/no/such/file.conf"), IoError);
}

TEST(SchedulerKindFromName, RoundTripsEveryKind) {
  for (const auto kind :
       {SchedulerKind::LocalAdaptive, SchedulerKind::GlobalAdaptive,
        SchedulerKind::LocalStatic, SchedulerKind::GlobalStatic,
        SchedulerKind::LocalAdaptiveNoDyn,
        SchedulerKind::GlobalAdaptiveNoDyn,
        SchedulerKind::BruteForceStatic,
        SchedulerKind::ReactiveBaseline}) {
    EXPECT_EQ(schedulerKindFromName(toString(kind)), kind);
  }
  EXPECT_THROW((void)schedulerKindFromName("quantum"), PreconditionError);
}

TEST(ExperimentFromConfig, AppliesValuesAndDefaults) {
  const auto kv = KeyValueConfig::parse(
      "graph = chain\n"
      "chain_length = 6\n"
      "scheduler = local, global\n"
      "mean_rate = 25\n"
      "profile = random-walk\n"
      "horizon_h = 3\n"
      "omega_target = 0.8\n"
      "vm_mtbf_h = 12\n");
  const auto ex = experimentFromConfig(kv);
  EXPECT_EQ(ex.graph, "chain");
  ASSERT_EQ(ex.schedulers.size(), 2u);
  EXPECT_EQ(ex.schedulers[0], SchedulerKind::LocalAdaptive);
  EXPECT_EQ(ex.schedulers[1], SchedulerKind::GlobalAdaptive);
  EXPECT_DOUBLE_EQ(ex.config.workload.mean_rate, 25.0);
  EXPECT_EQ(ex.config.workload.profile, ProfileKind::RandomWalk);
  EXPECT_DOUBLE_EQ(ex.config.horizon_s, 3.0 * kSecondsPerHour);
  EXPECT_DOUBLE_EQ(ex.config.omega_target, 0.8);
  EXPECT_DOUBLE_EQ(ex.config.faults.vm_mtbf_hours, 12.0);
  // Untouched defaults survive.
  EXPECT_DOUBLE_EQ(ex.config.interval_s, 60.0);
}

TEST(ExperimentFromConfig, DefaultsToGlobalScheduler) {
  const auto ex = experimentFromConfig(KeyValueConfig::parse("graph=paper\n"));
  ASSERT_EQ(ex.schedulers.size(), 1u);
  EXPECT_EQ(ex.schedulers[0], SchedulerKind::GlobalAdaptive);
}

TEST(ExperimentFromConfig, RejectsUnknownKeysGraphsProfiles) {
  EXPECT_THROW(
      (void)experimentFromConfig(KeyValueConfig::parse("grpah = paper\n")),
      PreconditionError);
  EXPECT_THROW(
      (void)experimentFromConfig(KeyValueConfig::parse("graph = torus\n")),
      PreconditionError);
  EXPECT_THROW((void)experimentFromConfig(
                   KeyValueConfig::parse("profile = bursty\n")),
               PreconditionError);
  EXPECT_THROW((void)experimentFromConfig(
                   KeyValueConfig::parse("scheduler = alien\n")),
               PreconditionError);
}

TEST(ExperimentFromConfig, ValidatesResultingConfig) {
  EXPECT_THROW((void)experimentFromConfig(
                   KeyValueConfig::parse("mean_rate = -3\n")),
               PreconditionError);
}

TEST(ExperimentFromConfig, UserMistakesThrowConfigError) {
  // All user-facing mistakes surface as ConfigError (a PreconditionError
  // carrying a clean one-line message for the CLI).
  EXPECT_THROW(
      (void)experimentFromConfig(KeyValueConfig::parse("no_such_key = 1\n")),
      ConfigError);
  EXPECT_THROW((void)experimentFromConfig(
                   KeyValueConfig::parse("mean_rate = fast\n")),
               ConfigError);
  EXPECT_THROW(
      (void)experimentFromConfig(KeyValueConfig::parse("seed = 4.5\n")),
      ConfigError);
  EXPECT_THROW((void)experimentFromConfig(KeyValueConfig::parse(
                   "graceful_degradation = maybe\n")),
               ConfigError);
  try {
    (void)experimentFromConfig(KeyValueConfig::parse("no_such_key = 1\n"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown config key: 'no_such_key'"),
              std::string::npos)
        << what;
    // No source-location noise in the user-facing message.
    EXPECT_EQ(what.find(".cpp"), std::string::npos) << what;
  }
}

TEST(ExperimentFromConfig, ParsesFaultAndResilienceKeys) {
  const auto ex = experimentFromConfig(KeyValueConfig::parse(
      "vm_mtbf_h = 2.5\n"
      "straggler_mtbf_h = 1.5\n"
      "straggler_factor = 0.25\n"
      "straggler_duration_s = 450\n"
      "acq_failure_prob = 0.1\n"
      "provisioning_delay_s = 75\n"
      "partition_mtbf_h = 3\n"
      "partition_duration_s = 90\n"
      "quarantine_threshold = 0.55\n"
      "quarantine_probes = 4\n"
      "acq_max_retries = 2\n"
      "acq_backoff_s = 45\n"
      "graceful_degradation = true\n"));
  const auto& cfg = ex.config;
  EXPECT_DOUBLE_EQ(cfg.faults.vm_mtbf_hours, 2.5);
  EXPECT_DOUBLE_EQ(cfg.faults.straggler_mtbf_hours, 1.5);
  EXPECT_DOUBLE_EQ(cfg.faults.straggler_factor, 0.25);
  EXPECT_DOUBLE_EQ(cfg.faults.straggler_duration_s, 450.0);
  EXPECT_DOUBLE_EQ(cfg.faults.acquisition_failure_prob, 0.1);
  EXPECT_DOUBLE_EQ(cfg.faults.provisioning_delay_s, 75.0);
  EXPECT_DOUBLE_EQ(cfg.faults.partition_mtbf_hours, 3.0);
  EXPECT_DOUBLE_EQ(cfg.faults.partition_duration_s, 90.0);
  EXPECT_DOUBLE_EQ(cfg.resilience.quarantine_threshold, 0.55);
  EXPECT_EQ(cfg.resilience.quarantine_probes, 4);
  EXPECT_EQ(cfg.resilience.acquisition_max_retries, 2);
  EXPECT_DOUBLE_EQ(cfg.resilience.acquisition_backoff_s, 45.0);
  EXPECT_TRUE(cfg.resilience.graceful_degradation);
}

TEST(ExperimentFromConfig, RejectsInvalidFaultKnobValues) {
  EXPECT_THROW((void)experimentFromConfig(
                   KeyValueConfig::parse("straggler_mtbf_h = 1\n"
                                         "straggler_factor = 1.5\n")),
               PreconditionError);
  EXPECT_THROW((void)experimentFromConfig(
                   KeyValueConfig::parse("acq_failure_prob = 1.0\n")),
               PreconditionError);
}

TEST(ExperimentFromConfig, NestedKeysAreCanonical) {
  std::vector<std::string> notes;
  const auto ex = experimentFromConfig(
      KeyValueConfig::parse("workload.mean_rate = 12\n"
                            "workload.profile = wave\n"
                            "workload.infra_variability = true\n"
                            "fault.vm_mtbf_h = 2\n"
                            "resilience.quarantine_threshold = 0.5\n"),
      &notes);
  EXPECT_DOUBLE_EQ(ex.config.workload.mean_rate, 12.0);
  EXPECT_EQ(ex.config.workload.profile, ProfileKind::PeriodicWave);
  EXPECT_TRUE(ex.config.workload.infra_variability);
  EXPECT_DOUBLE_EQ(ex.config.faults.vm_mtbf_hours, 2.0);
  EXPECT_DOUBLE_EQ(ex.config.resilience.quarantine_threshold, 0.5);
  // Canonical spellings produce no deprecation chatter.
  EXPECT_TRUE(notes.empty());
}

TEST(ExperimentFromConfig, FlatAliasesStillWorkAndAreNoted) {
  std::vector<std::string> notes;
  const auto ex = experimentFromConfig(
      KeyValueConfig::parse("mean_rate = 9\n"
                            "vm_mtbf_h = 4\n"),
      &notes);
  EXPECT_DOUBLE_EQ(ex.config.workload.mean_rate, 9.0);
  EXPECT_DOUBLE_EQ(ex.config.faults.vm_mtbf_hours, 4.0);
  ASSERT_EQ(notes.size(), 2u);
  EXPECT_NE(notes[0].find("'mean_rate' is deprecated"), std::string::npos)
      << notes[0];
  EXPECT_NE(notes[0].find("workload.mean_rate"), std::string::npos);
  EXPECT_NE(notes[1].find("'vm_mtbf_h' is deprecated"), std::string::npos);
}

TEST(ExperimentFromConfig, StrictSchemaRejectsFlatAliases) {
  // `config_schema = strict` turns the deprecation note into a hard
  // error that names the canonical replacement. Canonical spellings are
  // unaffected.
  try {
    (void)experimentFromConfig(
        KeyValueConfig::parse("config_schema = strict\n"
                              "mean_rate = 9\n"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'mean_rate' is deprecated"), std::string::npos)
        << what;
    EXPECT_NE(what.find("config_schema = strict"), std::string::npos) << what;
    EXPECT_NE(what.find("workload.mean_rate"), std::string::npos) << what;
  }
  std::vector<std::string> notes;
  const auto ex = experimentFromConfig(
      KeyValueConfig::parse("config_schema = strict\n"
                            "workload.mean_rate = 9\n"
                            "fault.vm_mtbf_h = 4\n"),
      &notes);
  EXPECT_DOUBLE_EQ(ex.config.workload.mean_rate, 9.0);
  EXPECT_DOUBLE_EQ(ex.config.faults.vm_mtbf_hours, 4.0);
  EXPECT_TRUE(notes.empty());
}

TEST(ExperimentFromConfig, UnknownSchemaValueIsRejected) {
  try {
    (void)experimentFromConfig(
        KeyValueConfig::parse("config_schema = pedantic\n"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pedantic"), std::string::npos) << what;
    EXPECT_NE(what.find("warn or strict"), std::string::npos) << what;
  }
}

TEST(ExperimentFromConfig, BothSpellingsOfOneKnobIsAnError) {
  try {
    (void)experimentFromConfig(
        KeyValueConfig::parse("mean_rate = 9\n"
                              "workload.mean_rate = 10\n"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mean_rate"), std::string::npos) << what;
    EXPECT_NE(what.find("aliases"), std::string::npos) << what;
  }
}

TEST(ExperimentFromConfig, ParsesElasticityKeys) {
  const auto ex = experimentFromConfig(KeyValueConfig::parse(
      "elasticity.provisioning_delay_s = 180\n"
      "elasticity.provisioning_delay_per_core_s = 20\n"
      "elasticity.spot_discount = 0.7\n"
      "elasticity.spot_fraction = 0.5\n"
      "elasticity.spot_preemption_mtbf_h = 2\n"
      "elasticity.spot_notice_s = 90\n"
      "elasticity.pe_state_mb = 64\n"
      "elasticity.migration_bandwidth_mbps = 250\n"));
  const auto& el = ex.config.elasticity;
  EXPECT_DOUBLE_EQ(el.provisioning_delay_s, 180.0);
  EXPECT_DOUBLE_EQ(el.provisioning_delay_per_core_s, 20.0);
  EXPECT_DOUBLE_EQ(el.spot_discount, 0.7);
  EXPECT_DOUBLE_EQ(el.spot_fraction, 0.5);
  EXPECT_DOUBLE_EQ(el.spot_preemption_mtbf_h, 2.0);
  EXPECT_DOUBLE_EQ(el.spot_notice_s, 90.0);
  EXPECT_DOUBLE_EQ(el.pe_state_mb, 64.0);
  EXPECT_DOUBLE_EQ(el.migration_bandwidth_mbps, 250.0);
  EXPECT_TRUE(el.anyEnabled());
}

TEST(ExperimentFromConfig, ElasticityDefaultsAreAllOff) {
  const auto ex = experimentFromConfig(KeyValueConfig::parse("graph=paper\n"));
  EXPECT_FALSE(ex.config.elasticity.anyEnabled());
}

TEST(ExperimentFromConfig, SpotPreemptionWithoutATierIsAnError) {
  EXPECT_THROW((void)experimentFromConfig(KeyValueConfig::parse(
                   "elasticity.spot_preemption_mtbf_h = 2\n")),
               PreconditionError);
}

TEST(ExperimentFromConfig, ProvisioningDelayUnderBothPrefixesIsAnError) {
  try {
    (void)experimentFromConfig(KeyValueConfig::parse(
        "fault.provisioning_delay_s = 60\n"
        "elasticity.provisioning_delay_s = 60\n"));
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("not both"), std::string::npos)
        << e.what();
  }
}

TEST(ExperimentFromConfig, ElasticityOnTheEventBackendIsAnError) {
  // Migration cost works on both backends; delays and spot are fluid-only.
  EXPECT_NO_THROW((void)experimentFromConfig(KeyValueConfig::parse(
      "backend = event\n"
      "elasticity.pe_state_mb = 50\n")));
  EXPECT_THROW((void)experimentFromConfig(KeyValueConfig::parse(
                   "backend = event\n"
                   "elasticity.spot_discount = 0.7\n")),
               PreconditionError);
  EXPECT_THROW((void)experimentFromConfig(KeyValueConfig::parse(
                   "backend = event\n"
                   "elasticity.provisioning_delay_s = 60\n")),
               PreconditionError);
}

TEST(ElasticityConfigValidate, ReportsEveryBadKnob) {
  ExperimentConfig cfg;
  cfg.elasticity.provisioning_delay_s = -1.0;       // error 1
  cfg.elasticity.spot_discount = 1.0;               // error 2 (must be < 1)
  cfg.elasticity.spot_fraction = 1.5;               // error 3
  cfg.elasticity.pe_state_mb = -5.0;                // error 4
  cfg.elasticity.migration_bandwidth_mbps = 0.0;    // error 5
  const auto errors = cfg.validationErrors();
  EXPECT_EQ(errors.size(), 5u);
  bool saw_discount = false;
  for (const auto& e : errors) {
    saw_discount = saw_discount || e.find("spot discount") != std::string::npos;
  }
  EXPECT_TRUE(saw_discount);
}

TEST(ExperimentConfigValidate, ReportsAllErrorsAtOnce) {
  ExperimentConfig cfg;
  cfg.horizon_s = -1.0;                     // error 1
  cfg.interval_s = 0.0;                     // error 2
  cfg.omega_target = 1.5;                   // error 3
  cfg.workload.mean_rate = -2.0;            // error 4
  cfg.faults.straggler_factor = 1.5;        // error 5
  try {
    cfg.validate();
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("5 errors"), std::string::npos) << what;
    EXPECT_NE(what.find("horizon"), std::string::npos) << what;
    EXPECT_NE(what.find("interval"), std::string::npos) << what;
    EXPECT_NE(what.find("omega"), std::string::npos) << what;
    EXPECT_NE(what.find("rate"), std::string::npos) << what;
    EXPECT_NE(what.find("straggler"), std::string::npos) << what;
  }
  EXPECT_EQ(cfg.validationErrors().size(), 5u);
}

TEST(ExperimentConfigValidate, CleanConfigHasNoErrors) {
  const ExperimentConfig cfg;
  EXPECT_TRUE(cfg.validationErrors().empty());
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ExperimentFromConfig, ParsesForecastKeys) {
  const auto ex = experimentFromConfig(KeyValueConfig::parse(
      "scheduler = global-predictive\n"
      "forecast.model = holt-winters\n"
      "forecast.horizon_intervals = 8\n"
      "forecast.ewma_alpha = 0.5\n"
      "forecast.hw_alpha = 0.4\n"
      "forecast.hw_beta = 0.1\n"
      "forecast.hw_gamma = 0.2\n"
      "forecast.hw_season_intervals = 20\n"
      "forecast.preacquire_margin = 0.25\n"
      "forecast.lookahead_alternates = false\n"));
  const auto& fo = ex.config.forecast;
  EXPECT_EQ(fo.model, ForecastModel::HoltWinters);
  EXPECT_EQ(fo.horizon_intervals, 8);
  EXPECT_DOUBLE_EQ(fo.ewma_alpha, 0.5);
  EXPECT_DOUBLE_EQ(fo.hw_alpha, 0.4);
  EXPECT_DOUBLE_EQ(fo.hw_beta, 0.1);
  EXPECT_DOUBLE_EQ(fo.hw_gamma, 0.2);
  EXPECT_EQ(fo.hw_season_intervals, 20);
  EXPECT_DOUBLE_EQ(fo.preacquire_margin, 0.25);
  EXPECT_FALSE(fo.lookahead_alternates);
  EXPECT_TRUE(fo.enabled());
}

TEST(ExperimentFromConfig, ForecastDefaultsOff) {
  const auto ex = experimentFromConfig(KeyValueConfig::parse("graph=paper\n"));
  EXPECT_FALSE(ex.config.forecast.enabled());
}

TEST(ExperimentFromConfig, UnknownForecastModelListsTheRegistry) {
  try {
    (void)experimentFromConfig(
        KeyValueConfig::parse("forecast.model = oracle\n"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    // The message is generated from the registry, so it names every
    // model the binary actually knows.
    for (const char* name : {"off", "naive", "ewma", "holt-winters"}) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
}

TEST(ExperimentFromConfig, UnknownProfileListsTheRegistry) {
  try {
    (void)experimentFromConfig(
        KeyValueConfig::parse("workload.profile = sawtooth\n"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    for (const char* name : {"constant", "wave", "random-walk", "spike"}) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
}

TEST(ExperimentFromConfig, PredictiveSchedulerNeedsForecastOn) {
  try {
    (void)experimentFromConfig(
        KeyValueConfig::parse("scheduler = local-predictive\n"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("forecast.model"),
              std::string::npos)
        << e.what();
  }
  EXPECT_NO_THROW((void)experimentFromConfig(
      KeyValueConfig::parse("scheduler = local-predictive\n"
                            "forecast.model = naive\n")));
}

TEST(ExperimentFromConfig, ForecastOnTheEventBackendIsAnError) {
  EXPECT_THROW((void)experimentFromConfig(
                   KeyValueConfig::parse("backend = event\n"
                                         "forecast.model = ewma\n")),
               ConfigError);
}

TEST(ExperimentFromConfig, ShippedExampleConfParses) {
  // Keep tools/example.conf working as documentation.
  const auto path = std::filesystem::path(__FILE__)
                        .parent_path()
                        .parent_path()
                        .parent_path() /
                    "tools" / "example.conf";
  const auto ex = experimentFromConfig(KeyValueConfig::load(path.string()));
  EXPECT_EQ(ex.graph, "paper");
  EXPECT_EQ(ex.schedulers.size(), 4u);
}

}  // namespace
}  // namespace dds
