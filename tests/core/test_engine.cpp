#include "dds/core/engine.hpp"

#include <gtest/gtest.h>

#include "dds/dataflow/standard_graphs.hpp"

namespace dds {
namespace {

ExperimentConfig quickConfig() {
  ExperimentConfig cfg;
  cfg.horizon_s = 10.0 * kSecondsPerMinute;
  cfg.interval_s = 60.0;
  cfg.workload.mean_rate = 5.0;
  return cfg;
}

TEST(SchedulerKindToString, AllNamed) {
  EXPECT_EQ(toString(SchedulerKind::LocalAdaptive), "local");
  EXPECT_EQ(toString(SchedulerKind::GlobalAdaptive), "global");
  EXPECT_EQ(toString(SchedulerKind::LocalStatic), "local-static");
  EXPECT_EQ(toString(SchedulerKind::GlobalStatic), "global-static");
  EXPECT_EQ(toString(SchedulerKind::LocalAdaptiveNoDyn), "local-nodyn");
  EXPECT_EQ(toString(SchedulerKind::GlobalAdaptiveNoDyn), "global-nodyn");
  EXPECT_EQ(toString(SchedulerKind::BruteForceStatic), "brute-force-static");
  EXPECT_EQ(toString(SchedulerKind::ReactiveBaseline), "reactive-autoscaler");
  EXPECT_EQ(toString(SchedulerKind::AnnealingStatic), "annealing-static");
}

TEST(ExperimentConfig, ValidatesFields) {
  ExperimentConfig cfg = quickConfig();
  EXPECT_NO_THROW(cfg.validate());
  cfg.workload.mean_rate = 0.0;
  EXPECT_THROW(cfg.validate(), PreconditionError);
  cfg = quickConfig();
  cfg.interval_s = cfg.horizon_s * 2.0;
  EXPECT_THROW(cfg.validate(), PreconditionError);
  cfg = quickConfig();
  cfg.omega_target = 1.5;
  EXPECT_THROW(cfg.validate(), PreconditionError);
  cfg = quickConfig();
  cfg.resource_period = 0;
  EXPECT_THROW(cfg.validate(), PreconditionError);
}

TEST(DeriveSigma, PositiveAndRateSensitive) {
  const Dataflow df = makePaperDataflow();
  const double lo = deriveSigma(df, 2.0, kSecondsPerHour);
  const double hi = deriveSigma(df, 50.0, kSecondsPerHour);
  EXPECT_GT(lo, 0.0);
  EXPECT_GT(hi, 0.0);
  // Higher rates come with a larger acceptable budget, so a dollar matters
  // less: sigma shrinks as the rate grows.
  EXPECT_LT(hi, lo);
}

TEST(DeriveSigma, HandlesNoDynamismGraphs) {
  const Dataflow df = makeDiamondDataflow();  // single-alternate PEs
  EXPECT_GT(deriveSigma(df, 5.0, kSecondsPerHour), 0.0);
}

TEST(Engine, RunProducesOneMetricPerInterval) {
  const Dataflow df = makePaperDataflow();
  const SimulationEngine engine(df, quickConfig());
  const auto r = engine.run(SchedulerKind::GlobalAdaptive);
  EXPECT_EQ(r.run.intervals().size(), 10u);
  EXPECT_EQ(r.scheduler_name, "global");
  EXPECT_GT(r.total_cost, 0.0);
  EXPECT_GT(r.average_gamma, 0.0);
  EXPECT_LE(r.average_gamma, 1.0);
  EXPECT_GT(r.average_omega, 0.0);
  EXPECT_LE(r.average_omega, 1.0);
  EXPECT_GE(r.peak_vms, 1);
  EXPECT_GE(r.peak_cores, 4);  // one core per PE minimum
}

TEST(Engine, SigmaOverrideWins) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg = quickConfig();
  cfg.sigma_override = 0.123;
  const SimulationEngine engine(df, cfg);
  EXPECT_DOUBLE_EQ(engine.sigma(), 0.123);
  const auto r = engine.run(SchedulerKind::LocalStatic);
  EXPECT_DOUBLE_EQ(r.sigma, 0.123);
  EXPECT_NEAR(r.theta, r.average_gamma - 0.123 * r.total_cost, 1e-12);
}

TEST(Engine, DeterministicForSameSeed) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg = quickConfig();
  cfg.workload.infra_variability = true;
  cfg.workload.profile = ProfileKind::RandomWalk;
  const SimulationEngine engine(df, cfg);
  const auto a = engine.run(SchedulerKind::GlobalAdaptive);
  const auto b = engine.run(SchedulerKind::GlobalAdaptive);
  EXPECT_DOUBLE_EQ(a.average_omega, b.average_omega);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  EXPECT_DOUBLE_EQ(a.theta, b.theta);
}

TEST(Engine, SeedChangesVariableRuns) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg = quickConfig();
  cfg.workload.infra_variability = true;
  cfg.workload.profile = ProfileKind::RandomWalk;
  cfg.horizon_s = 30.0 * kSecondsPerMinute;
  const auto a = SimulationEngine(df, cfg).run(SchedulerKind::LocalAdaptive);
  cfg.seed = 777;
  const auto b = SimulationEngine(df, cfg).run(SchedulerKind::LocalAdaptive);
  // Different seeds -> different traces and walks -> different outcomes.
  EXPECT_NE(a.average_omega, b.average_omega);
}

TEST(Engine, AdaptiveMeetsConstraintUnderStableConditions) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg = quickConfig();
  cfg.horizon_s = kSecondsPerHour;
  for (const auto kind :
       {SchedulerKind::LocalAdaptive, SchedulerKind::GlobalAdaptive}) {
    const auto r = SimulationEngine(df, cfg).run(kind);
    EXPECT_TRUE(r.constraint_met) << toString(kind) << " omega "
                                  << r.average_omega;
  }
}

TEST(Engine, CostCumulativeIsNonDecreasing) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg = quickConfig();
  cfg.horizon_s = kSecondsPerHour;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  const auto r = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  double prev = 0.0;
  for (const auto& m : r.run.intervals()) {
    EXPECT_GE(m.cost_cumulative, prev);
    prev = m.cost_cumulative;
  }
  EXPECT_NEAR(r.total_cost, prev, 1e-9);
}

TEST(Engine, BruteForceRunsOnSmallConfig) {
  const Dataflow df = makePaperDataflow();
  const auto r =
      SimulationEngine(df, quickConfig()).run(SchedulerKind::BruteForceStatic);
  EXPECT_EQ(r.scheduler_name, "brute-force-static");
  EXPECT_TRUE(r.constraint_met);
}

class EngineAllKindsTest : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(EngineAllKindsTest, EveryKindCompletesAndReportsSaneMetrics) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg = quickConfig();
  cfg.workload.infra_variability = true;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  const auto r = SimulationEngine(df, cfg).run(GetParam());
  EXPECT_EQ(r.scheduler_name, toString(GetParam()));
  EXPECT_GE(r.average_omega, 0.0);
  EXPECT_LE(r.average_omega, 1.0);
  EXPECT_GT(r.average_gamma, 0.0);
  EXPECT_LE(r.average_gamma, 1.0);
  EXPECT_GT(r.total_cost, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, EngineAllKindsTest,
    ::testing::Values(SchedulerKind::LocalAdaptive,
                      SchedulerKind::GlobalAdaptive,
                      SchedulerKind::LocalStatic,
                      SchedulerKind::GlobalStatic,
                      SchedulerKind::LocalAdaptiveNoDyn,
                      SchedulerKind::GlobalAdaptiveNoDyn,
                      SchedulerKind::BruteForceStatic,
                      SchedulerKind::ReactiveBaseline,
                      SchedulerKind::AnnealingStatic));

}  // namespace
}  // namespace dds
