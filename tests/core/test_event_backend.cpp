// Engine runs through the discrete-event backend.
#include <gtest/gtest.h>

#include "dds/config/config_file.hpp"
#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"

namespace dds {
namespace {

ExperimentConfig eventConfig() {
  ExperimentConfig cfg;
  cfg.horizon_s = 20.0 * kSecondsPerMinute;
  cfg.workload.mean_rate = 5.0;
  cfg.backend = SimBackend::Event;
  return cfg;
}

TEST(EventBackend, ToStringNames) {
  EXPECT_EQ(toString(SimBackend::Fluid), "fluid");
  EXPECT_EQ(toString(SimBackend::Event), "event");
}

TEST(EventBackend, FillsLatencyFields) {
  const Dataflow df = makePaperDataflow();
  const auto r =
      SimulationEngine(df, eventConfig()).run(SchedulerKind::GlobalAdaptive);
  EXPECT_GT(r.messages_delivered, 0u);
  EXPECT_GT(r.latency_mean_s, 0.0);
  EXPECT_GE(r.latency_p95_s, r.latency_mean_s * 0.5);
  EXPECT_GE(r.latency_p99_s, r.latency_p95_s);
  EXPECT_EQ(r.run.intervals().size(), 20u);
}

TEST(EventBackend, FluidBackendLeavesLatencyZero) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg = eventConfig();
  cfg.backend = SimBackend::Fluid;
  const auto r =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  EXPECT_EQ(r.messages_delivered, 0u);
  EXPECT_DOUBLE_EQ(r.latency_mean_s, 0.0);
}

TEST(EventBackend, BackendsAgreeOnThroughputShape) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg = eventConfig();
  cfg.horizon_s = kSecondsPerHour;
  const auto event =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  cfg.backend = SimBackend::Fluid;
  const auto fluid =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  EXPECT_NEAR(event.average_omega, fluid.average_omega, 0.12);
  EXPECT_TRUE(event.constraint_met);
}

TEST(EventBackend, StaticPolicyRunsWithoutAdaptation) {
  const Dataflow df = makePaperDataflow();
  const auto r =
      SimulationEngine(df, eventConfig()).run(SchedulerKind::GlobalStatic);
  EXPECT_EQ(r.scheduler_name, "global-static");
  EXPECT_GT(r.messages_delivered, 0u);
}

TEST(EventBackend, RejectsFaultInjection) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg = eventConfig();
  cfg.faults.vm_mtbf_hours = 2.0;
  EXPECT_THROW(SimulationEngine(df, cfg), PreconditionError);
}

TEST(EventBackend, ConfigFileSelectsBackend) {
  const auto ex = experimentFromConfig(
      KeyValueConfig::parse("backend = event\nmean_rate = 4\n"));
  EXPECT_EQ(ex.config.backend, SimBackend::Event);
  EXPECT_THROW((void)experimentFromConfig(
                   KeyValueConfig::parse("backend = quantum\n")),
               PreconditionError);
}

}  // namespace
}  // namespace dds
