// End-to-end integration tests asserting the paper's qualitative claims
// (§8.2) hold in this reproduction:
//  * static deployments degrade under data/infra variability (Fig. 4);
//  * adaptive heuristics recover the constraint where statics fail;
//  * application dynamism lowers cost at equal-or-better feasibility
//    (Fig. 9's ~15% claim, asserted directionally);
//  * the objective ranking logic (constraint first, then Theta) works.
#include <gtest/gtest.h>

#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/sched/heuristic_scheduler.hpp"

namespace dds {
namespace {

ExperimentConfig baseConfig(double rate) {
  ExperimentConfig cfg;
  cfg.horizon_s = 2.0 * kSecondsPerHour;
  cfg.interval_s = 60.0;
  cfg.workload.mean_rate = rate;
  return cfg;
}

TEST(Integration, StaticHandlesNoVariability) {
  const Dataflow df = makePaperDataflow();
  const auto cfg = baseConfig(5.0);
  for (const auto kind : {SchedulerKind::LocalStatic,
                          SchedulerKind::GlobalStatic,
                          SchedulerKind::BruteForceStatic}) {
    const auto r = SimulationEngine(df, cfg).run(kind);
    EXPECT_TRUE(r.constraint_met)
        << toString(kind) << " omega " << r.average_omega;
  }
}

TEST(Integration, DataVariabilityHurtsStaticDeployments) {
  // Fig. 4: with wave input, a static plan sized for the mean rate starves
  // at the peaks, dropping omega below the no-variability case.
  const Dataflow df = makePaperDataflow();
  auto cfg = baseConfig(5.0);
  const auto calm =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalStatic);
  cfg.workload.profile = ProfileKind::PeriodicWave;
  const auto wavy =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalStatic);
  EXPECT_LT(wavy.average_omega, calm.average_omega);
}

TEST(Integration, InfraVariabilityHurtsStaticDeployments) {
  const Dataflow df = makePaperDataflow();
  auto cfg = baseConfig(5.0);
  const auto ideal =
      SimulationEngine(df, cfg).run(SchedulerKind::LocalStatic);
  cfg.workload.infra_variability = true;
  const auto noisy =
      SimulationEngine(df, cfg).run(SchedulerKind::LocalStatic);
  EXPECT_LE(noisy.average_omega, ideal.average_omega + 1e-9);
}

TEST(Integration, AdaptiveHoldsConstraintUnderBothVariabilities) {
  const Dataflow df = makePaperDataflow();
  auto cfg = baseConfig(10.0);
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;
  const auto adaptive =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  EXPECT_TRUE(adaptive.constraint_met) << adaptive.average_omega;
}

TEST(Integration, ElasticityHarvestsOverestimatedRates) {
  // The deployment-time rate is only an estimate (§7.1). When the real
  // stream runs at a tenth of it, the adaptive policy scales in and
  // releases VMs at their paid hour boundaries, while the static
  // deployment keeps paying for the over-provisioned fleet. Wired by hand
  // so the estimate and the observed rate can differ.
  const Dataflow df = makePaperDataflow();
  const double estimated_rate = 40.0;
  const double actual_rate = 4.0;
  const SimTime horizon = 2.0 * kSecondsPerHour;

  auto runPolicy = [&](bool adaptive) {
    CloudProvider cloud(awsCatalog2013());
    TraceReplayer replayer = TraceReplayer::ideal();
    MonitoringService mon(cloud, replayer);
    SchedulerEnv env;
    env.dataflow = &df;
    env.cloud = &cloud;
    env.monitor = &mon;
    HeuristicOptions opts;
    opts.adaptive = adaptive;
    HeuristicScheduler sched(env, Strategy::Global, opts);
    Deployment dep = sched.deploy(estimated_rate);
    DataflowSimulator sim(df, cloud, mon, {});
    IntervalMetrics last{};
    double omega_sum = 0.0;
    for (IntervalIndex i = 0; i < 120; ++i) {
      if (i > 0) {
        ObservedState st;
        st.interval = i;
        st.now = static_cast<SimTime>(i) * 60.0;
        st.input_rate = actual_rate;
        st.average_omega = omega_sum / static_cast<double>(i);
        st.last_interval = &last;
        for (const auto& ev : sched.adapt(st, dep)) {
          sim.migrateBacklog(ev.pe, ev.backlog_fraction);
        }
      }
      last = sim.step(i, actual_rate, dep);
      omega_sum += last.omega;
    }
    return std::pair{cloud.accumulatedCost(horizon), omega_sum / 120.0};
  };

  const auto [adaptive_cost, adaptive_omega] = runPolicy(true);
  const auto [static_cost, static_omega] = runPolicy(false);
  EXPECT_LT(adaptive_cost, static_cost);
  EXPECT_GE(adaptive_omega, 0.7 - 0.05);
  EXPECT_GE(static_omega, 0.7 - 0.05);  // static over-provisions, QoS fine
}

TEST(Integration, AdaptiveMeetsConstraintAcrossProfiles) {
  const Dataflow df = makePaperDataflow();
  for (const auto profile :
       {ProfileKind::Constant, ProfileKind::PeriodicWave,
        ProfileKind::RandomWalk}) {
    auto cfg = baseConfig(10.0);
    cfg.workload.profile = profile;
    cfg.workload.infra_variability = true;
    for (const auto kind :
         {SchedulerKind::LocalAdaptive, SchedulerKind::GlobalAdaptive}) {
      const auto r = SimulationEngine(df, cfg).run(kind);
      EXPECT_TRUE(r.constraint_met)
          << toString(kind) << " on " << toString(profile) << ": "
          << r.average_omega;
    }
  }
}

TEST(Integration, DynamismReducesCost) {
  // Fig. 9: disabling alternate selection forces the expensive best-value
  // alternates, so the no-dynamism variant pays at least as much.
  const Dataflow df = makePaperDataflow();
  auto cfg = baseConfig(20.0);
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;
  const auto with_dyn =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  const auto without_dyn =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptiveNoDyn);
  EXPECT_LE(with_dyn.total_cost, without_dyn.total_cost + 1e-9);
}

TEST(Integration, DynamismImprovesTheta) {
  const Dataflow df = makePaperDataflow();
  auto cfg = baseConfig(20.0);
  cfg.workload.profile = ProfileKind::PeriodicWave;
  const auto with_dyn =
      SimulationEngine(df, cfg).run(SchedulerKind::LocalAdaptive);
  const auto without_dyn =
      SimulationEngine(df, cfg).run(SchedulerKind::LocalAdaptiveNoDyn);
  EXPECT_GE(with_dyn.theta, without_dyn.theta - 1e-9);
}

TEST(Integration, HigherRatesCostMore) {
  const Dataflow df = makePaperDataflow();
  double prev_cost = 0.0;
  for (const double rate : {5.0, 20.0, 50.0}) {
    const auto r = SimulationEngine(df, baseConfig(rate))
                       .run(SchedulerKind::GlobalAdaptive);
    EXPECT_GE(r.total_cost, prev_cost);
    prev_cost = r.total_cost;
  }
}

TEST(Integration, WorksOnLargerGraphs) {
  Rng rng(17);
  const Dataflow df = makeLayeredDataflow(5, 3, 3, rng);
  auto cfg = baseConfig(10.0);
  cfg.horizon_s = 30.0 * kSecondsPerMinute;
  cfg.workload.profile = ProfileKind::RandomWalk;
  cfg.workload.infra_variability = true;
  for (const auto kind :
       {SchedulerKind::LocalAdaptive, SchedulerKind::GlobalAdaptive}) {
    const auto r = SimulationEngine(df, cfg).run(kind);
    EXPECT_GT(r.average_omega, 0.0) << toString(kind);
    EXPECT_GT(r.total_cost, 0.0);
    EXPECT_EQ(r.run.intervals().size(), 30u);
  }
}

TEST(Integration, ScalesToHundredsOfCores) {
  // The paper scales to "100's of VMs"; at 50 msg/s with heavy alternates
  // the no-dynamism run needs tens of cores across many VMs.
  const Dataflow df = makePaperDataflow();
  auto cfg = baseConfig(50.0);
  cfg.horizon_s = 30.0 * kSecondsPerMinute;
  const auto r =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptiveNoDyn);
  EXPECT_GE(r.peak_cores, 60);
  EXPECT_TRUE(r.constraint_met) << r.average_omega;
}

}  // namespace
}  // namespace dds
