#include "dds/core/replication.hpp"

#include <gtest/gtest.h>

#include "dds/dataflow/standard_graphs.hpp"
#include "dds/sched/heuristic_scheduler.hpp"
#include "dds/sim/simulator.hpp"

namespace dds {
namespace {

ExperimentConfig quickConfig() {
  ExperimentConfig cfg;
  cfg.horizon_s = 20.0 * kSecondsPerMinute;
  cfg.workload.mean_rate = 8.0;
  cfg.workload.profile = ProfileKind::RandomWalk;
  cfg.workload.infra_variability = true;
  return cfg;
}

TEST(Replication, AggregatesAcrossSeeds) {
  const Dataflow df = makePaperDataflow();
  const auto r = runReplicated(df, quickConfig(),
                               SchedulerKind::GlobalAdaptive, 5);
  EXPECT_EQ(r.runs, 5u);
  EXPECT_EQ(r.scheduler_name, "global");
  EXPECT_EQ(r.omega.count(), 5u);
  EXPECT_GT(r.omega.mean(), 0.0);
  EXPECT_LE(r.omega.max(), 1.0);
  EXPECT_GT(r.cost.mean(), 0.0);
}

TEST(Replication, SeedsActuallyVaryOutcomes) {
  const Dataflow df = makePaperDataflow();
  const auto r = runReplicated(df, quickConfig(),
                               SchedulerKind::GlobalAdaptive, 5);
  // Different trace draws must produce at least slightly different costs
  // or omegas — a zero spread would mean the seed is being ignored.
  EXPECT_GT(r.omega.stddev() + r.cost.stddev(), 0.0);
}

TEST(Replication, SuccessRateCountsViolations) {
  const Dataflow df = makePaperDataflow();
  // Statics under heavy data variability miss the constraint for some
  // (most) seeds — success rate must reflect that.
  ExperimentConfig cfg = quickConfig();
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.horizon_s = kSecondsPerHour;
  const auto fixed =
      runReplicated(df, cfg, SchedulerKind::GlobalStatic, 4);
  const auto adaptive =
      runReplicated(df, cfg, SchedulerKind::GlobalAdaptive, 4);
  EXPECT_GE(adaptive.successRate(), fixed.successRate());
  EXPECT_LE(fixed.successRate(), 1.0);
  EXPECT_GE(fixed.successRate(), 0.0);
}

TEST(Replication, RejectsZeroRuns) {
  const Dataflow df = makePaperDataflow();
  EXPECT_THROW(
      (void)runReplicated(df, quickConfig(), SchedulerKind::LocalStatic, 0),
      PreconditionError);
}

TEST(LatencySla, DrainsBacklogThatOmegaCannotSee) {
  // Build a backlog, then feed at exactly capacity: Omega stays ~1 while
  // the queue never drains. The SLA option must add cores; without it the
  // scheduler stays put.
  const Dataflow df = makeChainDataflow(2, 1);  // costs 0.2 per stage
  auto runScenario = [&df](double sla) {
    CloudProvider cloud(awsCatalog2013());
    TraceReplayer replayer = TraceReplayer::ideal();
    MonitoringService mon(cloud, replayer);
    SchedulerEnv env;
    env.dataflow = &df;
    env.cloud = &cloud;
    env.monitor = &mon;
    HeuristicOptions opts;
    opts.max_queue_delay_s = sla;
    HeuristicScheduler sched(env, Strategy::Global, opts);
    Deployment dep = sched.deploy(10.0);  // capacity for 10 msg/s
    DataflowSimulator sim(df, cloud, mon, {});
    // One overload interval builds the queue, then feed at capacity.
    IntervalMetrics last = sim.step(0, 40.0, dep);
    for (IntervalIndex i = 1; i <= 6; ++i) {
      ObservedState st;
      st.interval = i;
      st.now = static_cast<SimTime>(i) * 60.0;
      st.input_rate = 10.0;
      st.average_omega = 0.9;  // healthy enough to skip omega scale-out
      st.last_interval = &last;
      for (const auto& ev : sched.adapt(st, dep)) {
        sim.migrateBacklog(ev.pe, ev.backlog_fraction);
      }
      last = sim.step(i, 10.0, dep);
    }
    return std::pair{totalAllocatedCores(cloud), sim.totalBacklog()};
  };

  const auto [cores_without, backlog_without] = runScenario(0.0);
  const auto [cores_with, backlog_with] = runScenario(120.0);
  // Without the SLA the queue persists forever (capacity == arrival);
  // with it the burst drains, after which scale-in correctly sheds the
  // temporary cores again (final core counts converge).
  EXPECT_NEAR(backlog_without, 1800.0, 1.0);
  EXPECT_NEAR(backlog_with, 0.0, 1.0);
  EXPECT_EQ(cores_with, cores_without);
}

}  // namespace
}  // namespace dds
