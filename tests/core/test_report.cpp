#include "dds/core/report.hpp"

#include <gtest/gtest.h>

#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"

namespace dds {
namespace {

ExperimentResult sampleResult() {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = 10.0 * kSecondsPerMinute;
  cfg.workload.mean_rate = 5.0;
  return SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
}

TEST(Report, IntervalSeriesHasOneRowPerInterval) {
  const auto r = sampleResult();
  const auto csv = intervalSeriesCsv(r.run);
  EXPECT_EQ(csv.header.size(), 8u);
  EXPECT_EQ(csv.rows.size(), r.run.intervals().size());
  // Columns line up with the metric series.
  const auto omega_col = csv.column("omega");
  for (std::size_t i = 0; i < omega_col.size(); ++i) {
    EXPECT_DOUBLE_EQ(omega_col[i], r.run.intervals()[i].omega);
  }
  // Round-trips through the CSV text layer.
  const auto parsed = parseCsv(formatCsv(csv));
  EXPECT_EQ(parsed.rows.size(), csv.rows.size());
}

TEST(Report, SummaryCsvOneRowPerResult) {
  const auto a = sampleResult();
  const std::vector<ExperimentResult> results = {a, a};
  const auto csv = summaryCsv(results);
  ASSERT_EQ(csv.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(csv.column("theta")[0], a.theta);
  EXPECT_DOUBLE_EQ(csv.column("cost_usd")[1], a.total_cost);
}

TEST(Report, SummaryTableNamesSchedulers) {
  const auto a = sampleResult();
  const std::vector<ExperimentResult> results = {a};
  const auto table = summaryTable(results);
  EXPECT_EQ(table.rowCount(), 1u);
  EXPECT_NE(table.render().find("global"), std::string::npos);
}

TEST(Report, EmptyInputsProduceEmptyTables) {
  const RunResult empty_run;
  EXPECT_TRUE(intervalSeriesCsv(empty_run).rows.empty());
  EXPECT_TRUE(summaryCsv({}).rows.empty());
  EXPECT_EQ(summaryTable({}).rowCount(), 0u);
}

}  // namespace
}  // namespace dds
