// End-to-end rapid-elasticity realism: provisioning delays, the spot
// market with drain-on-notice recovery, and migration downtime — plus the
// determinism guarantees the subsystem rides on (seed purity, --jobs
// bit-identity, engine-choice bit-identity, a golden preemption-heavy
// trace, and byte-level inertness when every knob is off).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/exp/campaign.hpp"
#include "dds/obs/jsonl_sink.hpp"

namespace dds {
namespace {

/// A spot-heavy hour: everything runs on deeply discounted preemptible
/// capacity with a 15-minute reclaim MTBF, so the provider takes VMs away
/// several times per run and the 30 s latency SLO is under real pressure.
ExperimentConfig preemptionHeavyConfig() {
  ExperimentConfig cfg;
  cfg.horizon_s = 1.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 8.0;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.seed = 2013;
  cfg.max_queue_delay_s = 30.0;
  cfg.elasticity.spot_discount = 0.7;
  cfg.elasticity.spot_fraction = 1.0;
  cfg.elasticity.spot_preemption_mtbf_h = 0.25;
  cfg.elasticity.spot_notice_s = 120.0;
  cfg.elasticity.pe_state_mb = 50.0;
  cfg.elasticity.migration_bandwidth_mbps = 100.0;
  cfg.resilience.graceful_degradation = true;
  return cfg;
}

void expectBitIdentical(const ExperimentResult& a,
                        const ExperimentResult& b) {
  EXPECT_EQ(a.scheduler_name, b.scheduler_name);
  EXPECT_EQ(a.average_omega, b.average_omega);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.theta, b.theta);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.resilience.preemption_drains, b.resilience.preemption_drains);
  EXPECT_EQ(a.messages_lost, b.messages_lost);
  EXPECT_EQ(a.recovery.slo_violation_s, b.recovery.slo_violation_s);
  EXPECT_EQ(a.recovery.mttr_s, b.recovery.mttr_s);
  EXPECT_EQ(a.recovery.p95_episode_s, b.recovery.p95_episode_s);
  ASSERT_EQ(a.run.intervals().size(), b.run.intervals().size());
  for (std::size_t i = 0; i < a.run.intervals().size(); ++i) {
    EXPECT_EQ(a.run.intervals()[i].omega, b.run.intervals()[i].omega) << i;
    EXPECT_EQ(a.run.intervals()[i].cost_cumulative,
              b.run.intervals()[i].cost_cumulative)
        << i;
  }
}

TEST(ElasticityEndToEnd, PreemptionsFireAndTheSchedulerDrains) {
  const Dataflow df = makePaperDataflow();
  const auto cfg = preemptionHeavyConfig();
  const auto r = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  // A 15-minute MTBF over an hour of all-spot capacity must reclaim VMs.
  EXPECT_GT(r.preemptions, 0);
  // The heuristic sees the notice and evacuates before the reclaim.
  EXPECT_GT(r.resilience.preemption_drains, 0);
  // Drained state migrates instead of dying with the VM; the run keeps
  // most of its availability.
  EXPECT_GT(r.recovery.availability, 0.5);
  EXPECT_GE(r.recovery.slo_violation_s, 0.0);
}

TEST(ElasticityEndToEnd, SpotCapacityIsCheaperThanOnDemand) {
  const Dataflow df = makePaperDataflow();
  auto cfg = preemptionHeavyConfig();
  // Same market without reclamations: pure price comparison.
  cfg.elasticity.spot_preemption_mtbf_h = 0.0;
  const auto spot =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  cfg.elasticity.spot_discount = 0.0;
  cfg.elasticity.spot_fraction = 0.0;
  const auto on_demand =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  EXPECT_LT(spot.total_cost, on_demand.total_cost);
}

TEST(ElasticityEndToEnd, SameSeedIsBitIdentical) {
  const Dataflow df = makePaperDataflow();
  const auto cfg = preemptionHeavyConfig();
  const auto r1 = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  const auto r2 = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  expectBitIdentical(r1, r2);
}

TEST(ElasticityEndToEnd, DifferentSeedsMovePreemptions) {
  const Dataflow df = makePaperDataflow();
  auto cfg = preemptionHeavyConfig();
  const auto r1 = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  cfg.seed = 2014;
  const auto r2 = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  const bool differs = r1.preemptions != r2.preemptions ||
                       r1.total_cost != r2.total_cost ||
                       r1.average_omega != r2.average_omega;
  EXPECT_TRUE(differs);
}

TEST(ElasticityEndToEnd, EveryRegisteredSchedulerCompletes) {
  const Dataflow df = makePaperDataflow();
  auto cfg = preemptionHeavyConfig();
  cfg.horizon_s = 20.0 * kSecondsPerMinute;
  cfg.elasticity.provisioning_delay_s = 60.0;
  cfg.elasticity.provisioning_delay_per_core_s = 15.0;
  for (const SchedulerKind kind : allSchedulerKinds()) {
    // The exhaustive static planner legitimately gives up on this rate;
    // everything else must finish the elasticity-heavy run.
    if (kind == SchedulerKind::BruteForceStatic) continue;
    const auto r = SimulationEngine(df, cfg).run(kind);
    EXPECT_FALSE(r.run.intervals().empty()) << r.scheduler_name;
    EXPECT_GT(r.total_cost, 0.0) << r.scheduler_name;
  }
}

TEST(ElasticityDelays, MatchTheFaultFamilyBitForBit) {
  // elasticity.provisioning_delay_s and fault.provisioning_delay_s feed
  // the same per-VM oracle: configuring the lag under either prefix must
  // produce the same run, bit for bit.
  const Dataflow df = makePaperDataflow();
  ExperimentConfig via_faults;
  via_faults.horizon_s = 0.5 * kSecondsPerHour;
  via_faults.workload.mean_rate = 10.0;
  via_faults.workload.profile = ProfileKind::PeriodicWave;
  via_faults.seed = 91;
  via_faults.faults.provisioning_delay_s = 120.0;
  ExperimentConfig via_elasticity = via_faults;
  via_elasticity.faults.provisioning_delay_s = 0.0;
  via_elasticity.elasticity.provisioning_delay_s = 120.0;
  expectBitIdentical(
      SimulationEngine(df, via_faults).run(SchedulerKind::GlobalAdaptive),
      SimulationEngine(df, via_elasticity)
          .run(SchedulerKind::GlobalAdaptive));
}

TEST(ElasticityDelays, PerCoreTermSlowsLargeClassesOnly) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig base;
  base.horizon_s = 0.5 * kSecondsPerHour;
  base.workload.mean_rate = 10.0;
  base.seed = 91;
  base.elasticity.provisioning_delay_s = 60.0;
  ExperimentConfig per_core = base;
  per_core.elasticity.provisioning_delay_per_core_s = 120.0;
  const auto flat =
      SimulationEngine(df, base).run(SchedulerKind::GlobalAdaptive);
  const auto scaled =
      SimulationEngine(df, per_core).run(SchedulerKind::GlobalAdaptive);
  // The heuristic buys multi-core classes: a per-core term changes the
  // delay draws and with them the run.
  EXPECT_NE(flat.average_omega == scaled.average_omega &&
                flat.total_cost == scaled.total_cost,
            true);
}

// --- migration downtime ---

TEST(ElasticityMigration, StateSizeCostsThroughput) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cheap = preemptionHeavyConfig();
  cheap.elasticity.pe_state_mb = 0.0;
  ExperimentConfig heavy = preemptionHeavyConfig();
  heavy.elasticity.pe_state_mb = 4000.0;  // 320 s of downtime per full move
  const auto instant =
      SimulationEngine(df, cheap).run(SchedulerKind::GlobalAdaptive);
  const auto paused =
      SimulationEngine(df, heavy).run(SchedulerKind::GlobalAdaptive);
  // Heavier state can only hurt: strictly more service-seconds lost.
  EXPECT_LE(paused.average_omega, instant.average_omega);
  EXPECT_NE(paused.average_omega, instant.average_omega);
}

TEST(ElasticityMigration, BandwidthIsIrrelevantWhenStateIsZero) {
  // With pe_state_mb = 0 the migration model must be a byte-level no-op:
  // changing the bandwidth knob cannot perturb the trace.
  const Dataflow df = makePaperDataflow();
  auto traced = [&df](double bandwidth) {
    ExperimentConfig cfg;
    cfg.horizon_s = 10.0 * kSecondsPerMinute;
    cfg.workload.mean_rate = 10.0;
    cfg.workload.profile = ProfileKind::PeriodicWave;
    cfg.seed = 77;
    cfg.elasticity.pe_state_mb = 0.0;
    cfg.elasticity.migration_bandwidth_mbps = bandwidth;
    std::ostringstream out;
    obs::JsonlTraceSink sink(out);
    (void)SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive,
                                        &sink);
    return out.str();
  };
  EXPECT_EQ(traced(100.0), traced(0.001));
}

TEST(ElasticityMigration, EventBackendEnginesStayBitIdentical) {
  // Migration pauses live in the event simulator's shared model logic:
  // the cached and reference engines must agree byte-for-byte with
  // pe_state_mb > 0, exactly as they do without it.
  const Dataflow df = makePaperDataflow();
  auto traced = [&df](bool reference) {
    ExperimentConfig cfg;
    cfg.horizon_s = 10.0 * kSecondsPerMinute;
    cfg.workload.mean_rate = 10.0;
    cfg.workload.profile = ProfileKind::PeriodicWave;
    cfg.seed = 77;
    cfg.backend = SimBackend::Event;
    cfg.event_reference_engine = reference;
    cfg.elasticity.pe_state_mb = 200.0;
    cfg.elasticity.migration_bandwidth_mbps = 50.0;
    std::ostringstream out;
    obs::JsonlTraceSink sink(out);
    (void)SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive,
                                        &sink);
    return out.str();
  };
  EXPECT_EQ(traced(false), traced(true));
}

// --- campaign parallelism ---

TEST(ElasticityCampaign, JobsKnobDoesNotPerturbResults) {
  const Dataflow df = makePaperDataflow();
  auto cfg = preemptionHeavyConfig();
  cfg.horizon_s = 20.0 * kSecondsPerMinute;
  Campaign campaign;
  for (const SchedulerKind kind :
       {SchedulerKind::GlobalAdaptive, SchedulerKind::LocalAdaptive,
        SchedulerKind::ReactiveBaseline}) {
    campaign.add({&df, cfg, kind, "", ""});
  }
  const auto serial = runCampaign(campaign, {.jobs = 1});
  const auto parallel = runCampaign(campaign, {.jobs = 4});
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    ASSERT_TRUE(serial.outcomes[i].ok) << serial.outcomes[i].error;
    ASSERT_TRUE(parallel.outcomes[i].ok) << parallel.outcomes[i].error;
    expectBitIdentical(serial.outcomes[i].result,
                       parallel.outcomes[i].result);
  }
}

// --- golden preemption-heavy trace ---

std::string readFixture(const std::string& name) {
  const std::string path = std::string(DDS_FAULTS_TESTDATA) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ElasticityGolden, PreemptionHeavyTraceByteIdentical) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg = preemptionHeavyConfig();
  cfg.horizon_s = 20.0 * kSecondsPerMinute;
  cfg.elasticity.provisioning_delay_s = 60.0;
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  (void)SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive, &sink);
  const std::string trace = out.str();
  // The run exercises the whole event vocabulary before the byte compare.
  for (const char* needle :
       {"preemption_notice", "\"preemption\"", "provisioning_complete",
        "migration_begin", "migration_end"}) {
    EXPECT_NE(trace.find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(trace, readFixture("golden_preemption_trace.jsonl"));
}

}  // namespace
}  // namespace dds
