#include "dds/faults/failure_injector.hpp"

#include <gtest/gtest.h>

#include "dds/common/stats.hpp"
#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"

namespace dds {
namespace {

TEST(FailureInjector, DisabledMeansImmortalVms) {
  const FailureInjector inj(FailureInjectorConfig{});
  EXPECT_FALSE(inj.config().enabled());
  EXPECT_TRUE(std::isinf(inj.deathTime(VmId(0), 0.0)));
  CloudProvider cloud(awsCatalog2013());
  (void)cloud.acquire(ResourceClassId(0), 0.0);
  EXPECT_TRUE(inj.injectUpTo(cloud, 1e9).empty());
}

TEST(FailureInjector, DeathTimesAreDeterministic) {
  FailureInjectorConfig cfg;
  cfg.vm_mtbf_hours = 10.0;
  cfg.seed = 7;
  const FailureInjector a(cfg), b(cfg);
  for (std::uint32_t v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(a.deathTime(VmId(v), 100.0),
                     b.deathTime(VmId(v), 100.0));
  }
}

TEST(FailureInjector, DifferentVmsGetDifferentLifetimes) {
  FailureInjectorConfig cfg;
  cfg.vm_mtbf_hours = 10.0;
  const FailureInjector inj(cfg);
  EXPECT_NE(inj.deathTime(VmId(0), 0.0), inj.deathTime(VmId(1), 0.0));
}

TEST(FailureInjector, LifetimesAreExponentialWithMtbfMean) {
  FailureInjectorConfig cfg;
  cfg.vm_mtbf_hours = 5.0;
  cfg.seed = 99;
  const FailureInjector inj(cfg);
  RunningStats lifetimes;
  for (std::uint32_t v = 0; v < 5000; ++v) {
    lifetimes.add((inj.deathTime(VmId(v), 0.0)) / kSecondsPerHour);
  }
  EXPECT_NEAR(lifetimes.mean(), 5.0, 0.3);
  // Exponential: stddev == mean.
  EXPECT_NEAR(lifetimes.stddev(), 5.0, 0.5);
}

TEST(FailureInjector, DeathTimeIsIndependentOfQueryOrder) {
  FailureInjectorConfig cfg;
  cfg.vm_mtbf_hours = 7.0;
  cfg.seed = 21;
  const FailureInjector forward(cfg), backward(cfg);
  std::vector<SimTime> expected;
  for (std::uint32_t v = 0; v < 20; ++v) {
    expected.push_back(forward.deathTime(VmId(v), 10.0 * v));
  }
  // A second injector queried in reverse (and twice over) agrees exactly:
  // the draw is a pure function of (seed, vm, t_start).
  for (std::uint32_t v = 20; v-- > 0;) {
    (void)backward.deathTime(VmId(v), 10.0 * v);
  }
  for (std::uint32_t v = 0; v < 20; ++v) {
    EXPECT_DOUBLE_EQ(backward.deathTime(VmId(v), 10.0 * v), expected[v]);
  }
}

TEST(FailureInjector, DeathTimeShiftsWithStart) {
  FailureInjectorConfig cfg;
  cfg.vm_mtbf_hours = 5.0;
  const FailureInjector inj(cfg);
  EXPECT_DOUBLE_EQ(inj.deathTime(VmId(3), 1000.0),
                   inj.deathTime(VmId(3), 0.0) + 1000.0);
}

TEST(FailureInjector, InjectCrashesDueVmsAndReportsLosses) {
  FailureInjectorConfig cfg;
  cfg.vm_mtbf_hours = 1.0;
  cfg.seed = 3;
  const FailureInjector inj(cfg);
  CloudProvider cloud(awsCatalog2013());
  const VmId vm = cloud.acquire(ResourceClassId(3), 0.0);  // 4 cores
  cloud.instance(vm).allocateCore(PeId(0));
  cloud.instance(vm).allocateCore(PeId(0));
  cloud.instance(vm).allocateCore(PeId(1));
  // Give PE 0 a survivor core elsewhere.
  const VmId other = cloud.acquire(ResourceClassId(0), 0.0);
  cloud.instance(other).allocateCore(PeId(0));

  const SimTime death = inj.deathTime(vm, 0.0);
  const auto events = inj.injectUpTo(cloud, death + 1.0);
  bool crashed_target = false;
  for (const auto& ev : events) {
    if (ev.vm != vm) continue;
    crashed_target = true;
    ASSERT_EQ(ev.losses.size(), 2u);
    for (const auto& loss : ev.losses) {
      if (loss.pe == PeId(0)) {
        EXPECT_NEAR(loss.fraction, 2.0 / 3.0, 1e-12);  // 2 of 3 cores
      } else {
        EXPECT_EQ(loss.pe, PeId(1));
        EXPECT_DOUBLE_EQ(loss.fraction, 1.0);  // its only core
      }
    }
  }
  EXPECT_TRUE(crashed_target);
  EXPECT_FALSE(cloud.instance(vm).isActive());
  // Billing stopped at the crash (still a started hour).
  EXPECT_DOUBLE_EQ(cloud.instance(vm).offTime(), death);
}

TEST(FailureInjector, NothingHappensBeforeDeathTime) {
  FailureInjectorConfig cfg;
  cfg.vm_mtbf_hours = 100.0;
  const FailureInjector inj(cfg);
  CloudProvider cloud(awsCatalog2013());
  const VmId vm = cloud.acquire(ResourceClassId(0), 0.0);
  const SimTime death = inj.deathTime(vm, 0.0);
  EXPECT_TRUE(inj.injectUpTo(cloud, death - 1.0).empty());
  EXPECT_TRUE(cloud.instance(vm).isActive());
}

TEST(FaultTolerance, AdaptiveRecoversFromCrashes) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = 2.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  cfg.faults.vm_mtbf_hours = 2.0;  // aggressive: every VM dies ~once per run
  const auto r = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  EXPECT_GT(r.vm_failures, 0);
  // Re-allocation keeps the application alive and near the constraint.
  EXPECT_GE(r.average_omega, 0.6);
}

TEST(FaultTolerance, StaticDeploymentBleedsUnderCrashes) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = 4.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  cfg.faults.vm_mtbf_hours = 2.0;
  const auto fixed =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalStatic);
  const auto adaptive =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  EXPECT_GT(fixed.vm_failures, 0);
  // A static deployment never replaces dead capacity: it ends the run far
  // below the adaptive policy.
  EXPECT_LT(fixed.run.intervals().back().omega,
            adaptive.run.intervals().back().omega);
  EXPECT_LT(fixed.average_omega, adaptive.average_omega);
}

TEST(FaultTolerance, FailureFreeRunsReportZero) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = 30.0 * kSecondsPerMinute;
  cfg.workload.mean_rate = 5.0;
  const auto r = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  EXPECT_EQ(r.vm_failures, 0);
  EXPECT_DOUBLE_EQ(r.messages_lost, 0.0);
}

TEST(FaultTolerance, ConfigValidatesMtbf) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.faults.vm_mtbf_hours = -1.0;
  EXPECT_THROW(SimulationEngine(df, cfg), PreconditionError);
}

}  // namespace
}  // namespace dds
