#include "dds/faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "dds/common/stats.hpp"
#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"

namespace dds {
namespace {

FaultPlanConfig allFamiliesConfig(std::uint64_t seed = 11) {
  FaultPlanConfig cfg;
  cfg.seed = seed;
  cfg.vm_mtbf_hours = 4.0;
  cfg.straggler_mtbf_hours = 1.0;
  cfg.straggler_factor = 0.3;
  cfg.straggler_duration_s = 600.0;
  cfg.acquisition_failure_prob = 0.25;
  cfg.provisioning_delay_s = 120.0;
  cfg.partition_mtbf_hours = 2.0;
  cfg.partition_duration_s = 120.0;
  return cfg;
}

TEST(FaultPlanConfig, EnablementPredicates) {
  FaultPlanConfig off;
  EXPECT_FALSE(off.anyEnabled());
  EXPECT_TRUE(allFamiliesConfig().anyEnabled());
  EXPECT_TRUE(allFamiliesConfig().crashesEnabled());
  EXPECT_TRUE(allFamiliesConfig().stragglersEnabled());
  EXPECT_TRUE(allFamiliesConfig().acquisitionFaultsEnabled());
  EXPECT_TRUE(allFamiliesConfig().partitionsEnabled());
}

TEST(FaultPlanConfig, ValidateRejectsBadKnobs) {
  {
    auto cfg = allFamiliesConfig();
    cfg.straggler_factor = 1.0;  // a "straggler" at full speed is not one
    EXPECT_THROW(cfg.validate(), PreconditionError);
  }
  {
    auto cfg = allFamiliesConfig();
    cfg.acquisition_failure_prob = 1.0;  // would deadlock every scheduler
    EXPECT_THROW(cfg.validate(), PreconditionError);
  }
  {
    auto cfg = allFamiliesConfig();
    cfg.straggler_duration_s = 0.0;
    EXPECT_THROW(cfg.validate(), PreconditionError);
  }
  {
    auto cfg = allFamiliesConfig();
    cfg.partition_duration_s = -1.0;
    EXPECT_THROW(cfg.validate(), PreconditionError);
  }
}

TEST(FaultPlan, DeathTimeMatchesGeneralizedInjector) {
  const auto cfg = allFamiliesConfig();
  const FaultPlan plan(cfg);
  const FailureInjector injector(FailureInjectorConfig{cfg.vm_mtbf_hours, cfg.seed});
  for (std::uint32_t v = 0; v < 16; ++v) {
    EXPECT_DOUBLE_EQ(plan.deathTime(VmId(v), 50.0),
                     injector.deathTime(VmId(v), 50.0));
  }
}

// The property the whole design hangs on: every answer is a pure function
// of (seed, entity, time) — the order and number of queries is irrelevant.
TEST(FaultPlan, StragglerAnswersAreQueryOrderIndependent) {
  const FaultPlan a(allFamiliesConfig());
  const FaultPlan b(allFamiliesConfig());

  std::vector<SimTime> times;
  for (int i = 0; i < 200; ++i) times.push_back(37.0 * i);

  // `a` is queried forward, `b` backward and twice over; answers and the
  // derived cpu factors must agree exactly.
  std::vector<bool> forward;
  forward.reserve(times.size());
  for (const SimTime t : times) {
    forward.push_back(a.isStraggling(VmId(3), 0.0, t));
  }
  for (auto it = times.rbegin(); it != times.rend(); ++it) {
    (void)b.isStraggling(VmId(3), 0.0, *it);  // warm-up pass, reversed
  }
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(b.isStraggling(VmId(3), 0.0, times[i]), forward[i]) << i;
    EXPECT_DOUBLE_EQ(b.cpuFactor(VmId(3), 0.0, times[i]),
                     forward[i] ? 0.3 : 1.0);
  }
}

TEST(FaultPlan, StragglerEpisodesAreRelativeToVmStart) {
  const FaultPlan plan(allFamiliesConfig());
  // A VM started at T sees the same episode timeline, shifted by T.
  for (int i = 0; i < 500; ++i) {
    const SimTime rel = 61.0 * i;
    EXPECT_EQ(plan.isStraggling(VmId(5), 0.0, rel),
              plan.isStraggling(VmId(5), 1234.0, 1234.0 + rel));
  }
}

TEST(FaultPlan, StragglerDutyCycleTracksMtbfAndDuration) {
  auto cfg = allFamiliesConfig();
  cfg.straggler_mtbf_hours = 0.5;    // 1800 s mean gap
  cfg.straggler_duration_s = 600.0;  // expected duty ~ 600/2400 = 0.25
  const FaultPlan plan(cfg);
  int straggling = 0;
  int samples = 0;
  for (std::uint32_t v = 0; v < 64; ++v) {
    for (int i = 0; i < 200; ++i) {
      straggling += plan.isStraggling(VmId(v), 0.0, 60.0 * i) ? 1 : 0;
      ++samples;
    }
  }
  const double duty =
      static_cast<double>(straggling) / static_cast<double>(samples);
  EXPECT_NEAR(duty, 0.25, 0.05);
}

TEST(FaultPlan, PartitionsAreSymmetricAndIrreflexive) {
  const FaultPlan plan(allFamiliesConfig());
  for (int i = 0; i < 300; ++i) {
    const SimTime t = 97.0 * i;
    EXPECT_EQ(plan.linkPartitioned(VmId(1), VmId(7), t),
              plan.linkPartitioned(VmId(7), VmId(1), t));
    EXPECT_FALSE(plan.linkPartitioned(VmId(4), VmId(4), t));
  }
}

TEST(FaultPlan, PartitionsHitSomePairsWithinHorizon) {
  auto cfg = allFamiliesConfig();
  cfg.partition_mtbf_hours = 0.25;
  const FaultPlan plan(cfg);
  int hits = 0;
  for (std::uint32_t a = 0; a < 6; ++a) {
    for (std::uint32_t b = a + 1; b < 6; ++b) {
      for (int i = 0; i < 240; ++i) {
        if (plan.linkPartitioned(VmId(a), VmId(b), 30.0 * i)) {
          ++hits;
          break;
        }
      }
    }
  }
  EXPECT_GT(hits, 0);
}

TEST(FaultPlan, AcquisitionRejectionRateMatchesProbability) {
  const FaultPlan plan(allFamiliesConfig());
  int rejected = 0;
  constexpr int kAttempts = 20000;
  for (std::uint64_t n = 0; n < kAttempts; ++n) {
    rejected += plan.acquisitionRejected(n) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(rejected) / kAttempts, 0.25, 0.02);
  // And the per-attempt verdict is stable on re-query.
  for (std::uint64_t n = 0; n < 100; ++n) {
    EXPECT_EQ(plan.acquisitionRejected(n), plan.acquisitionRejected(n));
  }
}

TEST(FaultPlan, ProvisioningDelayIsExponentialPerVm) {
  const FaultPlan plan(allFamiliesConfig());
  const ResourceClass one_core{"c1", 1, 1.0, 100.0, 0.0};
  RunningStats delays;
  for (std::uint32_t v = 0; v < 5000; ++v) {
    const SimTime d = plan.provisioningDelay(VmId(v), one_core);
    EXPECT_GE(d, 0.0);
    EXPECT_DOUBLE_EQ(d, plan.provisioningDelay(VmId(v), one_core));  // pure
    delays.add(d);
  }
  EXPECT_NEAR(delays.mean(), 120.0, 10.0);
  EXPECT_NEAR(delays.stddev(), 120.0, 15.0);
}

TEST(FaultPlan, DisabledFamiliesAreInert) {
  FaultPlanConfig cfg;  // everything off
  const FaultPlan plan(cfg);
  EXPECT_FALSE(plan.perturbsPerformance());
  EXPECT_FALSE(plan.perturbsAcquisition());
  EXPECT_DOUBLE_EQ(plan.cpuFactor(VmId(0), 0.0, 1e6), 1.0);
  EXPECT_FALSE(plan.linkPartitioned(VmId(0), VmId(1), 1e6));
  EXPECT_FALSE(plan.acquisitionRejected(0));
  const ResourceClass big{"c8", 8, 1.0, 100.0, 0.0};
  EXPECT_DOUBLE_EQ(plan.provisioningDelay(VmId(0), big), 0.0);
  EXPECT_FALSE(plan.perturbsSpot());
  EXPECT_EQ(plan.preemptionTime(VmId(0), 0.0),
            std::numeric_limits<SimTime>::infinity());
}

// -- spot-preemption family --

FaultPlanConfig preemptionConfig(std::uint64_t seed = 11) {
  FaultPlanConfig cfg;
  cfg.seed = seed;
  cfg.spot_preemption_mtbf_hours = 2.0;
  cfg.spot_notice_s = 120.0;
  return cfg;
}

TEST(FaultPlanPreemption, TimesArePureInSeedVmAndStart) {
  const FaultPlan a(preemptionConfig());
  const FaultPlan b(preemptionConfig());
  for (std::uint32_t v = 0; v < 64; ++v) {
    const SimTime t = a.preemptionTime(VmId(v), 100.0);
    EXPECT_GT(t, 100.0);
    EXPECT_DOUBLE_EQ(t, a.preemptionTime(VmId(v), 100.0));  // re-query
    EXPECT_DOUBLE_EQ(t, b.preemptionTime(VmId(v), 100.0));  // fresh plan
  }
  // A different seed reshuffles the schedule.
  const FaultPlan c(preemptionConfig(12));
  int moved = 0;
  for (std::uint32_t v = 0; v < 64; ++v) {
    moved += a.preemptionTime(VmId(v), 0.0) != c.preemptionTime(VmId(v), 0.0)
                 ? 1
                 : 0;
  }
  EXPECT_GT(moved, 32);
}

TEST(FaultPlanPreemption, TimesShiftWithVmStart) {
  const FaultPlan plan(preemptionConfig());
  for (std::uint32_t v = 0; v < 32; ++v) {
    EXPECT_DOUBLE_EQ(plan.preemptionTime(VmId(v), 500.0),
                     plan.preemptionTime(VmId(v), 0.0) + 500.0);
  }
}

TEST(FaultPlanPreemption, MeanLifetimeTracksMtbf) {
  const FaultPlan plan(preemptionConfig());
  RunningStats lifetimes;
  for (std::uint32_t v = 0; v < 5000; ++v) {
    lifetimes.add(plan.preemptionTime(VmId(v), 0.0));
  }
  EXPECT_NEAR(lifetimes.mean(), 2.0 * 3600.0, 0.05 * 2.0 * 3600.0);
}

TEST(FaultPlanPreemption, NoticeWindowIsTheConfiguredLeadTime) {
  EXPECT_DOUBLE_EQ(FaultPlan(preemptionConfig()).noticeWindow(), 120.0);
  EXPECT_TRUE(FaultPlan(preemptionConfig()).perturbsSpot());
}

TEST(FaultPlanPreemption, InjectOnlyReclaimsPreemptibleVms) {
  const FaultPlan plan(preemptionConfig());
  CloudProvider cloud(withSpotTier(awsCatalog2013(), 0.7));
  const VmId od = cloud.acquire(cloud.catalog().byName("m1.small"), 0.0);
  const VmId spot =
      cloud.acquire(cloud.catalog().byName("m1.small-spot"), 0.0);
  // Far past every finite preemption time.
  const auto events =
      plan.injectPreemptionsUpTo(cloud, 1000.0 * kSecondsPerHour);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].vm, spot);
  EXPECT_TRUE(cloud.instance(od).isActive());
  EXPECT_FALSE(cloud.instance(spot).isActive());
  EXPECT_EQ(cloud.instance(spot).terminationReason(),
            TerminationReason::Preempted);
  // Idempotent: the reclaimed VM left the active set.
  EXPECT_TRUE(
      plan.injectPreemptionsUpTo(cloud, 1000.0 * kSecondsPerHour).empty());
}

TEST(FaultPlanPreemption, InjectReportsBacklogLossAndFreesCores) {
  const FaultPlan plan(preemptionConfig());
  CloudProvider cloud(withSpotTier(awsCatalog2013(), 0.7));
  const VmId spot =
      cloud.acquire(cloud.catalog().byName("m1.large-spot"), 0.0);
  cloud.instance(spot).allocateCore(PeId(2));
  cloud.instance(spot).allocateCore(PeId(2));
  const auto events =
      plan.injectPreemptionsUpTo(cloud, 1000.0 * kSecondsPerHour);
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].losses.size(), 1u);
  EXPECT_EQ(events[0].losses[0].pe, PeId(2));
  // Both of the PE's cores sat on the reclaimed VM: all backlog is lost.
  EXPECT_DOUBLE_EQ(events[0].losses[0].fraction, 1.0);
}

TEST(FaultPlanPreemption, DisabledFamilyNeverFires) {
  FaultPlanConfig cfg;
  cfg.seed = 11;
  const FaultPlan plan(cfg);
  CloudProvider cloud(withSpotTier(awsCatalog2013(), 0.7));
  (void)cloud.acquire(cloud.catalog().byName("m1.small-spot"), 0.0);
  EXPECT_TRUE(
      plan.injectPreemptionsUpTo(cloud, 1000.0 * kSecondsPerHour).empty());
}

TEST(FaultPlan, InjectUpToIsIdempotentAtTheSameTime) {
  const FaultPlan plan(allFamiliesConfig());
  CloudProvider cloud(awsCatalog2013());
  for (int i = 0; i < 8; ++i) {
    (void)cloud.acquire(ResourceClassId(0), 0.0);
  }
  const SimTime horizon = 50.0 * kSecondsPerHour;
  const auto first = plan.injectUpTo(cloud, horizon);
  EXPECT_FALSE(first.empty());  // at mtbf 4 h nearly every VM dies by 50 h
  // Crashed VMs left the active set: the same call reports nothing new.
  EXPECT_TRUE(plan.injectUpTo(cloud, horizon).empty());
}

// -- end-to-end determinism and recovery behaviour --

ExperimentConfig turbulentExperiment() {
  ExperimentConfig cfg;
  cfg.horizon_s = 2.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  cfg.seed = 77;
  cfg.faults.vm_mtbf_hours = 3.0;
  cfg.faults.straggler_mtbf_hours = 1.0;
  cfg.faults.straggler_factor = 0.3;
  cfg.faults.straggler_duration_s = 600.0;
  cfg.faults.acquisition_failure_prob = 0.2;
  cfg.faults.provisioning_delay_s = 90.0;
  cfg.resilience.quarantine_threshold = 0.5;
  cfg.resilience.graceful_degradation = true;
  return cfg;
}

TEST(FaultPlanEndToEnd, SameSeedYieldsIdenticalResults) {
  const Dataflow df = makePaperDataflow();
  const auto cfg = turbulentExperiment();
  const auto r1 = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  const auto r2 = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);

  EXPECT_EQ(r1.vm_failures, r2.vm_failures);
  EXPECT_DOUBLE_EQ(r1.messages_lost, r2.messages_lost);
  EXPECT_DOUBLE_EQ(r1.total_cost, r2.total_cost);
  EXPECT_DOUBLE_EQ(r1.theta, r2.theta);
  EXPECT_EQ(r1.acquisition_rejections, r2.acquisition_rejections);
  EXPECT_EQ(r1.resilience.stragglers_quarantined,
            r2.resilience.stragglers_quarantined);
  EXPECT_EQ(r1.resilience.graceful_degradations,
            r2.resilience.graceful_degradations);
  ASSERT_EQ(r1.run.intervals().size(), r2.run.intervals().size());
  for (std::size_t i = 0; i < r1.run.intervals().size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.run.intervals()[i].omega,
                     r2.run.intervals()[i].omega)
        << "interval " << i;
    EXPECT_DOUBLE_EQ(r1.run.intervals()[i].cost_cumulative,
                     r2.run.intervals()[i].cost_cumulative)
        << "interval " << i;
  }
}

TEST(FaultPlanEndToEnd, DifferentSeedsYieldDifferentFaultTimelines) {
  const Dataflow df = makePaperDataflow();
  auto cfg = turbulentExperiment();
  const auto r1 = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  cfg.seed = 78;
  const auto r2 = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  bool differs = r1.vm_failures != r2.vm_failures ||
                 r1.acquisition_rejections != r2.acquisition_rejections ||
                 std::abs(r1.average_omega - r2.average_omega) > 1e-12;
  EXPECT_TRUE(differs);
}

TEST(FaultPlanEndToEnd, AdaptivePoliciesRecoverStaticsDoNot) {
  const Dataflow df = makePaperDataflow();
  auto cfg = turbulentExperiment();
  cfg.horizon_s = 4.0 * kSecondsPerHour;

  const auto global =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  const auto local =
      SimulationEngine(df, cfg).run(SchedulerKind::LocalAdaptive);
  const auto fixed =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalStatic);

  // The adaptive policies keep answering faults: constraint violations
  // stay bounded episodes, and overall availability stays high.
  for (const auto* r : {&global, &local}) {
    EXPECT_GE(r->average_omega, 0.6) << r->scheduler_name;
    EXPECT_GE(r->recovery.availability, 0.5) << r->scheduler_name;
    EXPECT_EQ(r->recovery.unrecovered_episodes, 0) << r->scheduler_name;
  }
  // The static deployment cannot replace lost capacity: by the horizon it
  // sits in an open violation episode with far worse availability.
  EXPECT_GT(fixed.recovery.unrecovered_episodes, 0);
  EXPECT_LT(fixed.recovery.availability, global.recovery.availability);
  EXPECT_LT(fixed.run.intervals().back().omega,
            global.run.intervals().back().omega);
}

TEST(FaultPlanEndToEnd, CleanRunReportsFullAvailability) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = 30.0 * kSecondsPerMinute;
  cfg.workload.mean_rate = 5.0;
  const auto r = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  EXPECT_EQ(r.recovery.violation_episodes, 0);
  EXPECT_DOUBLE_EQ(r.recovery.availability, 1.0);
  EXPECT_DOUBLE_EQ(r.recovery.mttr_s, 0.0);
  EXPECT_EQ(r.acquisition_rejections, 0);
  EXPECT_EQ(r.resilience.stragglers_quarantined, 0);
}

TEST(FaultPlanEndToEnd, FaultFamiliesRequireFluidBackend) {
  const Dataflow df = makePaperDataflow();
  auto cfg = turbulentExperiment();
  cfg.backend = SimBackend::Event;
  EXPECT_THROW(SimulationEngine(df, cfg), PreconditionError);
}

}  // namespace
}  // namespace dds
