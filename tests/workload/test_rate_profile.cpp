#include "dds/workload/rate_profile.hpp"

#include <gtest/gtest.h>

#include "dds/common/stats.hpp"

namespace dds {
namespace {

TEST(ConstantRate, AlwaysTheSame) {
  const ConstantRate p(5.0);
  EXPECT_DOUBLE_EQ(p.rate(0.0), 5.0);
  EXPECT_DOUBLE_EQ(p.rate(1e6), 5.0);
  EXPECT_DOUBLE_EQ(p.meanRate(), 5.0);
}

TEST(ConstantRate, RejectsNegative) {
  EXPECT_THROW(ConstantRate(-1.0), PreconditionError);
}

TEST(PeriodicWaveRate, OscillatesAroundMean) {
  const PeriodicWaveRate p(10.0, 4.0, 1200.0);
  EXPECT_DOUBLE_EQ(p.rate(0.0), 10.0);           // sin(0) = 0
  EXPECT_NEAR(p.rate(300.0), 14.0, 1e-9);        // quarter period: peak
  EXPECT_NEAR(p.rate(900.0), 6.0, 1e-9);         // three quarters: trough
  EXPECT_NEAR(p.rate(1200.0), 10.0, 1e-9);       // full period
}

TEST(PeriodicWaveRate, ClampsAtZero) {
  const PeriodicWaveRate p(1.0, 5.0, 100.0);
  for (double t = 0.0; t < 100.0; t += 5.0) EXPECT_GE(p.rate(t), 0.0);
  EXPECT_DOUBLE_EQ(p.rate(75.0), 0.0);  // trough would be -4
}

TEST(PeriodicWaveRate, PhaseShiftsTheWave) {
  const PeriodicWaveRate base(10.0, 4.0, 1200.0, 0.0);
  const PeriodicWaveRate shifted(10.0, 4.0, 1200.0, 3.14159265358979);
  EXPECT_NEAR(base.rate(300.0), 14.0, 1e-6);
  EXPECT_NEAR(shifted.rate(300.0), 6.0, 1e-6);
}

TEST(PeriodicWaveRate, RejectsBadParams) {
  EXPECT_THROW(PeriodicWaveRate(-1.0, 1.0, 100.0), PreconditionError);
  EXPECT_THROW(PeriodicWaveRate(1.0, -1.0, 100.0), PreconditionError);
  EXPECT_THROW(PeriodicWaveRate(1.0, 1.0, 0.0), PreconditionError);
}

TEST(RandomWalkRate, DeterministicForSeed) {
  const RandomWalkRate a(10.0, 1.0, 2.0, 20.0, 60.0, 3600.0, 77);
  const RandomWalkRate b(10.0, 1.0, 2.0, 20.0, 60.0, 3600.0, 77);
  for (double t = 0.0; t < 3600.0; t += 60.0) {
    EXPECT_DOUBLE_EQ(a.rate(t), b.rate(t));
  }
}

TEST(RandomWalkRate, StaysWithinClamp) {
  const RandomWalkRate p(10.0, 5.0, 4.0, 16.0, 60.0, 7200.0, 5);
  for (double t = 0.0; t < 7200.0; t += 60.0) {
    EXPECT_GE(p.rate(t), 4.0);
    EXPECT_LE(p.rate(t), 16.0);
  }
}

TEST(RandomWalkRate, HoversAroundMean) {
  const RandomWalkRate p(10.0, 1.0, 0.0, 100.0, 60.0, 48 * 3600.0, 23);
  RunningStats s;
  for (double t = 0.0; t < 48 * 3600.0; t += 60.0) s.add(p.rate(t));
  EXPECT_NEAR(s.mean(), 10.0, 2.0);  // mean reversion keeps it near 10
  EXPECT_GT(s.stddev(), 0.2);        // but it does wander
}

TEST(RandomWalkRate, ActuallyWalks) {
  const RandomWalkRate p(10.0, 2.0, 0.0, 100.0, 60.0, 3600.0, 9);
  bool moved = false;
  const double first = p.rate(0.0);
  for (double t = 60.0; t < 3600.0; t += 60.0) {
    if (p.rate(t) != first) {
      moved = true;
      break;
    }
  }
  EXPECT_TRUE(moved);
}

TEST(RandomWalkRate, WrapsPastHorizon) {
  const RandomWalkRate p(10.0, 1.0, 0.0, 100.0, 60.0, 600.0, 3);
  EXPECT_DOUBLE_EQ(p.rate(0.0), p.rate(600.0));
}

TEST(RandomWalkRate, RejectsBadParams) {
  EXPECT_THROW(RandomWalkRate(10.0, -1.0, 0.0, 20.0, 60.0, 600.0, 1),
               PreconditionError);
  EXPECT_THROW(RandomWalkRate(10.0, 1.0, 20.0, 10.0, 60.0, 600.0, 1),
               PreconditionError);
  EXPECT_THROW(RandomWalkRate(10.0, 1.0, 0.0, 20.0, 0.0, 600.0, 1),
               PreconditionError);
  EXPECT_THROW(
      RandomWalkRate(10.0, 1.0, 0.0, 20.0, 60.0, 600.0, 1, 1.5),
      PreconditionError);
}

TEST(SpikeRate, RectangularBurst) {
  const SpikeRate p(5.0, 50.0, 100.0, 10.0);
  EXPECT_DOUBLE_EQ(p.rate(0.0), 5.0);
  EXPECT_DOUBLE_EQ(p.rate(99.9), 5.0);
  EXPECT_DOUBLE_EQ(p.rate(100.0), 50.0);
  EXPECT_DOUBLE_EQ(p.rate(109.9), 50.0);
  EXPECT_DOUBLE_EQ(p.rate(110.0), 5.0);
}

TEST(MakeProfile, BuildsEachKind) {
  for (const auto kind : {ProfileKind::Constant, ProfileKind::PeriodicWave,
                          ProfileKind::RandomWalk}) {
    const auto p = makeProfile(kind, 8.0, 3600.0, 1);
    ASSERT_NE(p, nullptr) << toString(kind);
    EXPECT_DOUBLE_EQ(p->meanRate(), 8.0);
    EXPECT_GE(p->rate(0.0), 0.0);
    EXPECT_FALSE(p->describe().empty());
  }
}

TEST(MakeProfile, WaveUsesFortyPercentAmplitude) {
  const auto p = makeProfile(ProfileKind::PeriodicWave, 10.0, 3600.0, 1);
  double peak = 0.0;
  for (double t = 0.0; t < 1800.0; t += 10.0) {
    peak = std::max(peak, p->rate(t));
  }
  EXPECT_NEAR(peak, 14.0, 0.05);
}

TEST(ToStringProfileKind, Names) {
  EXPECT_EQ(toString(ProfileKind::Constant), "constant");
  EXPECT_EQ(toString(ProfileKind::PeriodicWave), "wave");
  EXPECT_EQ(toString(ProfileKind::RandomWalk), "random-walk");
  EXPECT_EQ(toString(ProfileKind::Spike), "spike");
}

TEST(ProfileRegistry, NamesRoundTrip) {
  for (const ProfileKind kind : allProfileKinds()) {
    EXPECT_EQ(parseProfileKind(profileName(kind)), kind);
    EXPECT_FALSE(profileSummary(kind).empty());
  }
}

TEST(ProfileRegistry, KnowsEveryKindOnce) {
  EXPECT_EQ(allProfileKinds().size(), 4u);
}

TEST(ProfileRegistry, RejectsUnknownNames) {
  EXPECT_THROW(parseProfileKind("sawtooth"), PreconditionError);
  EXPECT_THROW(parseProfileKind(""), PreconditionError);
  // The old informal spelling must not silently parse.
  EXPECT_THROW(parseProfileKind("periodic-wave"), PreconditionError);
}

TEST(MakeProfile, RandomWalkStaysInsideTheDocumentedClamp) {
  // The factory documents a [0.2x, 2x]-of-mean clamp; scan several
  // seeds across two days of minutes and check both bounds hold.
  for (const std::uint64_t seed : {1ull, 7ull, 23ull, 2013ull}) {
    const auto p =
        makeProfile(ProfileKind::RandomWalk, 10.0, 48.0 * 3600.0, seed);
    for (double t = 0.0; t < 48.0 * 3600.0; t += 60.0) {
      ASSERT_GE(p->rate(t), 2.0) << "seed " << seed << " @" << t;
      ASSERT_LE(p->rate(t), 20.0) << "seed " << seed << " @" << t;
    }
  }
}

TEST(MakeProfile, SpikeBoundariesAreHalfOpen) {
  // Flash crowd at [0.4 * horizon, 0.5 * horizon): start inclusive,
  // end exclusive, base rate either side.
  const auto p = makeProfile(ProfileKind::Spike, 10.0, 1000.0, 1);
  EXPECT_DOUBLE_EQ(p->rate(399.999999), 10.0);
  EXPECT_DOUBLE_EQ(p->rate(400.0), 30.0);
  EXPECT_DOUBLE_EQ(p->rate(499.999999), 30.0);
  EXPECT_DOUBLE_EQ(p->rate(500.0), 10.0);
}

TEST(MakeProfile, SpikeBoundariesOnAnUnevenHorizon) {
  // A horizon that is not a multiple of ten still puts the burst at
  // exactly [0.4 h, 0.5 h).
  const auto p = makeProfile(ProfileKind::Spike, 10.0, 777.0, 1);
  const double start = 0.4 * 777.0;
  const double end = start + 0.1 * 777.0;
  EXPECT_DOUBLE_EQ(p->rate(start - 1e-6), 10.0);
  EXPECT_DOUBLE_EQ(p->rate(start), 30.0);
  EXPECT_DOUBLE_EQ(p->rate(end - 1e-6), 30.0);
  EXPECT_DOUBLE_EQ(p->rate(end), 10.0);
}

TEST(CompositeRate, SumsParts) {
  std::vector<std::unique_ptr<RateProfile>> parts;
  parts.push_back(std::make_unique<ConstantRate>(3.0));
  parts.push_back(std::make_unique<SpikeRate>(0.0, 7.0, 100.0, 50.0));
  const CompositeRate p(std::move(parts));
  EXPECT_DOUBLE_EQ(p.rate(0.0), 3.0);
  EXPECT_DOUBLE_EQ(p.rate(120.0), 10.0);
  EXPECT_DOUBLE_EQ(p.meanRate(), 3.0);
  EXPECT_NE(p.describe().find("composite"), std::string::npos);
}

TEST(CompositeRate, RejectsEmptyAndNull) {
  EXPECT_THROW(CompositeRate({}), PreconditionError);
  std::vector<std::unique_ptr<RateProfile>> parts;
  parts.push_back(nullptr);
  EXPECT_THROW(CompositeRate(std::move(parts)), PreconditionError);
}

TEST(MakeProfile, SpikeIsThreeTimesBase) {
  const auto p = makeProfile(ProfileKind::Spike, 10.0, 1000.0, 1);
  EXPECT_DOUBLE_EQ(p->rate(0.0), 10.0);
  EXPECT_DOUBLE_EQ(p->rate(450.0), 30.0);  // inside [400, 500)
  EXPECT_DOUBLE_EQ(p->rate(600.0), 10.0);
}

class ProfileNonNegativeTest
    : public ::testing::TestWithParam<std::pair<ProfileKind, double>> {};

TEST_P(ProfileNonNegativeTest, RatesNeverNegative) {
  const auto [kind, mean] = GetParam();
  const auto p = makeProfile(kind, mean, 7200.0, 17);
  for (double t = 0.0; t < 7200.0; t += 30.0) {
    EXPECT_GE(p->rate(t), 0.0) << toString(kind) << " @" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndRates, ProfileNonNegativeTest,
    ::testing::Values(std::pair{ProfileKind::Constant, 2.0},
                      std::pair{ProfileKind::PeriodicWave, 2.0},
                      std::pair{ProfileKind::RandomWalk, 2.0},
                      std::pair{ProfileKind::PeriodicWave, 50.0},
                      std::pair{ProfileKind::RandomWalk, 50.0},
                      std::pair{ProfileKind::Spike, 10.0}));

}  // namespace
}  // namespace dds
