#include <gtest/gtest.h>

#include "dds/cloud/resource_class.hpp"
#include "dds/common/error.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/monitor/monitoring.hpp"
#include "dds/sched/scheduler.hpp"

namespace dds {
namespace {

TEST(SchedulerRegistry, NameParseRoundTripsForEveryKind) {
  for (const SchedulerKind kind : allSchedulerKinds()) {
    const std::string name = schedulerName(kind);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(parseSchedulerKind(name), kind) << name;
    EXPECT_EQ(toString(kind), name);
  }
}

TEST(SchedulerRegistry, NamesAreUnique) {
  const auto& kinds = allSchedulerKinds();
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    for (std::size_t j = i + 1; j < kinds.size(); ++j) {
      EXPECT_NE(schedulerName(kinds[i]), schedulerName(kinds[j]));
    }
  }
}

TEST(SchedulerRegistry, ParseRejectsUnknownNameWithOffender) {
  try {
    (void)parseSchedulerKind("quantum");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("quantum"), std::string::npos);
  }
}

TEST(SchedulerRegistry, FactoryBuildsEveryKind) {
  Dataflow df = makePaperDataflow();
  CloudProvider cloud{awsCatalog2013()};
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon{cloud, replayer};
  SchedulerEnv env;
  env.dataflow = &df;
  env.cloud = &cloud;
  env.monitor = &mon;

  for (const SchedulerKind kind : allSchedulerKinds()) {
    const auto scheduler = makeScheduler(kind, env);
    ASSERT_NE(scheduler, nullptr) << schedulerName(kind);
    // The constructed scheduler must answer to its registry name.
    EXPECT_EQ(scheduler->name(), schedulerName(kind));
  }
}

TEST(SchedulerRegistry, TuningReachesTheScheduler) {
  Dataflow df = makePaperDataflow();
  CloudProvider cloud{awsCatalog2013()};
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon{cloud, replayer};
  SchedulerEnv env;
  env.dataflow = &df;
  env.cloud = &cloud;
  env.monitor = &mon;

  SchedulerTuning tuning;
  tuning.sigma = 0.5;
  tuning.seed = 7;
  // Smoke check: every kind accepts a non-default tuning.
  for (const SchedulerKind kind : allSchedulerKinds()) {
    EXPECT_NE(makeScheduler(kind, env, tuning), nullptr);
  }
}

}  // namespace
}  // namespace dds
