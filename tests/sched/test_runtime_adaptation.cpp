// Closed-loop runtime-adaptation tests: scheduler + simulator wired by
// hand (no engine), driving multi-interval scenarios that exercise the
// §7.2 machinery — rate surges, rate collapses, degraded VMs, alternate
// up/downgrades, hour-boundary VM releases and migration events.
#include <gtest/gtest.h>

#include "dds/dataflow/standard_graphs.hpp"
#include "dds/sched/heuristic_scheduler.hpp"
#include "dds/sim/rate_model.hpp"

namespace dds {
namespace {

class Loop {
 public:
  Loop(Dataflow graph, Strategy strategy, TraceReplayer replayer,
       HeuristicOptions opts = {})
      : df_(std::move(graph)),
        cloud_(awsCatalog2013()),
        replayer_(std::move(replayer)),
        mon_(cloud_, replayer_),
        scheduler_(makeEnv(), strategy, opts),
        deployment_(df_),
        simulator_(df_, cloud_, mon_, SimConfig{}) {}

  void deploy(double rate) { deployment_ = scheduler_.deploy(rate); }

  /// Run one interval at `rate`; returns the interval metrics.
  IntervalMetrics tick(double rate) {
    if (interval_ > 0) {
      ObservedState st;
      st.interval = interval_;
      st.now = static_cast<SimTime>(interval_) * 60.0;
      st.input_rate = last_rate_;
      st.average_omega =
          omega_sum_ / static_cast<double>(interval_);
      st.last_interval = &last_;
      for (const auto& ev : scheduler_.adapt(st, deployment_)) {
        simulator_.migrateBacklog(ev.pe, ev.backlog_fraction);
        ++migration_events_;
      }
    }
    last_ = simulator_.step(interval_, rate, deployment_);
    omega_sum_ += last_.omega;
    last_rate_ = rate;
    ++interval_;
    return last_;
  }

  const Dataflow& df() const { return df_; }
  CloudProvider& cloud() { return cloud_; }
  const Deployment& deployment() const { return deployment_; }
  int migrationEvents() const { return migration_events_; }
  double averageOmega() const {
    return interval_ > 0 ? omega_sum_ / static_cast<double>(interval_)
                         : 1.0;
  }

 private:
  SchedulerEnv makeEnv() {
    SchedulerEnv e;
    e.dataflow = &df_;
    e.cloud = &cloud_;
    e.monitor = &mon_;
    e.omega_target = 0.7;
    e.epsilon = 0.05;
    return e;
  }

  Dataflow df_;
  CloudProvider cloud_;
  TraceReplayer replayer_;
  MonitoringService mon_;
  HeuristicScheduler scheduler_;
  Deployment deployment_;
  DataflowSimulator simulator_;
  IntervalIndex interval_ = 0;
  double last_rate_ = 0.0;
  double omega_sum_ = 0.0;
  IntervalMetrics last_{};
  int migration_events_ = 0;
};

TEST(RuntimeAdaptation, RecoversFromRateSurge) {
  Loop loop(makePaperDataflow(), Strategy::Global, TraceReplayer::ideal());
  loop.deploy(5.0);
  for (int i = 0; i < 3; ++i) (void)loop.tick(5.0);
  // 4x surge: the first surged interval tanks, adaptation then recovers.
  const auto surged = loop.tick(20.0);
  EXPECT_LT(surged.omega, 0.9);
  IntervalMetrics last{};
  for (int i = 0; i < 6; ++i) last = loop.tick(20.0);
  EXPECT_GE(last.omega, 0.7 - 0.05);
}

TEST(RuntimeAdaptation, SheddsCoresAfterRateCollapse) {
  Loop loop(makePaperDataflow(), Strategy::Global, TraceReplayer::ideal());
  loop.deploy(40.0);
  (void)loop.tick(40.0);
  const int cores_at_peak = totalAllocatedCores(loop.cloud());
  for (int i = 0; i < 8; ++i) (void)loop.tick(4.0);
  EXPECT_LT(totalAllocatedCores(loop.cloud()), cores_at_peak);
}

TEST(RuntimeAdaptation, CollapseCanTriggerMigrations) {
  Loop loop(makePaperDataflow(), Strategy::Local, TraceReplayer::ideal());
  loop.deploy(50.0);
  (void)loop.tick(50.0);
  for (int i = 0; i < 10; ++i) (void)loop.tick(2.0);
  // Scale-in across many VMs should have moved at least one PE off a VM.
  EXPECT_GT(loop.migrationEvents(), 0);
}

TEST(RuntimeAdaptation, LocalReleasesEmptyVmsImmediately) {
  Loop loop(makePaperDataflow(), Strategy::Local, TraceReplayer::ideal());
  loop.deploy(50.0);
  (void)loop.tick(50.0);
  const auto vms_at_peak = loop.cloud().activeVms().size();
  for (int i = 0; i < 6; ++i) (void)loop.tick(2.0);
  EXPECT_LT(loop.cloud().activeVms().size(), vms_at_peak);
}

TEST(RuntimeAdaptation, GlobalHoldsEmptyVmsUntilHourBoundary) {
  Loop loop(makePaperDataflow(), Strategy::Global, TraceReplayer::ideal());
  loop.deploy(50.0);
  (void)loop.tick(50.0);
  const auto vms_at_peak = loop.cloud().activeVms().size();
  // Collapse the rate; within the first paid hour the global strategy
  // keeps emptied VMs around (they are already paid for).
  for (int i = 0; i < 10; ++i) (void)loop.tick(2.0);
  EXPECT_EQ(loop.cloud().activeVms().size(), vms_at_peak);
  // Cross the hour boundary: now the empties get released.
  for (int i = 0; i < 55; ++i) (void)loop.tick(2.0);
  EXPECT_LT(loop.cloud().activeVms().size(), vms_at_peak);
}

TEST(RuntimeAdaptation, DegradedInfrastructureTriggersScaleOut) {
  // All VMs run at 60% of rated speed; the deployment planned at rated
  // performance is short and adaptation must add cores.
  TraceReplayer degraded({PerfTrace::constant(0.6)},
                         {PerfTrace::constant(1.0)},
                         {PerfTrace::constant(1.0)}, 0);
  Loop loop(makePaperDataflow(), Strategy::Global, std::move(degraded));
  loop.deploy(10.0);
  const int planned = totalAllocatedCores(loop.cloud());
  IntervalMetrics last{};
  for (int i = 0; i < 8; ++i) last = loop.tick(10.0);
  EXPECT_GT(totalAllocatedCores(loop.cloud()), planned);
  EXPECT_GE(last.omega, 0.7 - 0.05);
}

TEST(RuntimeAdaptation, SurgeSwitchesToCheaperAlternates) {
  HeuristicOptions opts;
  opts.alternate_period = 1;  // react every interval for this scenario
  Loop loop(makePaperDataflow(), Strategy::Local, TraceReplayer::ideal(),
            opts);
  loop.deploy(5.0);
  // Pin the expensive alternates, then surge so hard that the cheap ones
  // are the only way back to the constraint.
  for (int i = 0; i < 2; ++i) (void)loop.tick(5.0);
  (void)loop.tick(45.0);
  (void)loop.tick(45.0);
  const auto& dep = loop.deployment();
  const bool downgraded =
      dep.activeAlternate(PeId(1)) == AlternateId(1) ||
      dep.activeAlternate(PeId(2)) == AlternateId(1);
  EXPECT_TRUE(downgraded);
}

TEST(RuntimeAdaptation, SteadyStateHoldsConstraintOverAnHour) {
  Loop loop(makePaperDataflow(), Strategy::Global,
            TraceReplayer::futureGridLike(7));
  loop.deploy(15.0);
  for (int i = 0; i < 60; ++i) (void)loop.tick(15.0);
  EXPECT_GE(loop.averageOmega(), 0.7 - 0.05);
}

TEST(RuntimeAdaptation, EveryPeKeepsACoreThroughChurn) {
  Loop loop(makePaperDataflow(), Strategy::Global,
            TraceReplayer::futureGridLike(3));
  loop.deploy(10.0);
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    (void)loop.tick(rng.uniform(2.0, 40.0));
    for (std::uint32_t p = 0; p < 4; ++p) {
      ASSERT_GE(totalCores(loop.cloud(), PeId(p)), 1)
          << "interval " << i << " PE " << p;
    }
  }
}

}  // namespace
}  // namespace dds
