#include "dds/sched/plan_evaluator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "dds/common/rng.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/sched/feasibility_memo.hpp"
#include "dds/sched/static_planning.hpp"

namespace dds {
namespace {

/// Reference Theta of the evaluator's current state, recomputed from
/// scratch through the pre-evaluator code path.
double referenceTheta(const Dataflow& df, const ResourceCatalog& catalog,
                      const PlanEvaluator& eval,
                      const PlanEvaluatorOptions& options) {
  Deployment dep(df);
  return referencePlanTheta(df, catalog, eval.alternates(), eval.vmCounts(),
                            options.input_rate, options.omega_target,
                            options.sigma, options.horizon_hours, dep,
                            nullptr);
}

PlanEvaluatorOptions defaultOptions() {
  PlanEvaluatorOptions options;
  options.input_rate = 8.0;
  options.omega_target = 0.9;
  options.sigma = 0.01;
  options.horizon_hours = 2.0;
  return options;
}

/// Drive the evaluator through a random move sequence, checking after
/// every move that the incremental Theta is bit-identical to the full
/// recompute. Exercises alternate flips, VM nudges and undo pairs.
void randomWalkCheck(const Dataflow& df, std::uint64_t seed,
                     std::size_t moves) {
  const ResourceCatalog catalog = awsCatalog2013();
  const PlanEvaluatorOptions options = defaultOptions();
  PlanEvaluator eval(df, catalog, options);

  Rng rng(seed);
  const std::size_t n_pes = df.peCount();
  const std::size_t n_classes = catalog.size();
  std::vector<int> counts(n_classes, 0);
  counts[catalog.largest().value()] =
      static_cast<int>(n_pes);  // usually feasible, not always
  eval.reset(eval.alternates(), counts);

  for (std::size_t step = 0; step < moves; ++step) {
    if (rng.chance(0.5)) {
      const auto pe = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(n_pes) - 1));
      const auto n_alts =
          df.pe(PeId(static_cast<PeId::value_type>(pe))).alternateCount();
      const auto alt = static_cast<AlternateId::value_type>(
          rng.uniformInt(0, static_cast<std::int64_t>(n_alts) - 1));
      eval.setAlternate(pe, AlternateId(alt));
    } else {
      const auto cls = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(n_classes) - 1));
      const int delta = rng.chance(0.5) ? 1 : -1;
      eval.setVmCount(cls,
                      std::max(0, eval.vmCounts()[cls] + delta));
    }
    const double incremental = eval.theta();
    const double reference = referenceTheta(df, catalog, eval, options);
    // Bitwise equality, including the -inf infeasible sentinel.
    EXPECT_EQ(incremental, reference) << "step " << step;
  }
}

TEST(PlanEvaluator, IncrementalThetaMatchesReferenceOnPaperGraph) {
  randomWalkCheck(makePaperDataflow(), 11, 300);
}

TEST(PlanEvaluator, IncrementalThetaMatchesReferenceOnLayeredGraphs) {
  Rng graph_rng(99);
  randomWalkCheck(makeLayeredDataflow(4, 3, 3, graph_rng), 12, 250);
  randomWalkCheck(makeLayeredDataflow(6, 4, 3, graph_rng), 13, 250);
}

TEST(PlanEvaluator, BatchedSetAlternatesMatchesSequential) {
  Rng graph_rng(5);
  const Dataflow df = makeLayeredDataflow(5, 3, 3, graph_rng);
  const ResourceCatalog catalog = awsCatalog2013();
  const PlanEvaluatorOptions options = defaultOptions();
  PlanEvaluator batched(df, catalog, options);
  PlanEvaluator sequential(df, catalog, options);

  Rng rng(21);
  const std::size_t n_pes = df.peCount();
  std::vector<AlternateId> combo(n_pes, AlternateId(0));
  for (int round = 0; round < 50; ++round) {
    for (std::size_t pe = 0; pe < n_pes; ++pe) {
      const auto n_alts =
          df.pe(PeId(static_cast<PeId::value_type>(pe))).alternateCount();
      if (rng.chance(0.4)) {
        combo[pe] = AlternateId(static_cast<AlternateId::value_type>(
            rng.uniformInt(0, static_cast<std::int64_t>(n_alts) - 1)));
      }
      sequential.setAlternate(pe, combo[pe]);
    }
    batched.setAlternates(combo);
    ASSERT_EQ(batched.demand().size(), sequential.demand().size());
    for (std::size_t i = 0; i < n_pes; ++i) {
      EXPECT_EQ(batched.demand()[i], sequential.demand()[i])
          << "round " << round << " pe " << i;
    }
    EXPECT_EQ(batched.gamma(), sequential.gamma());
  }
}

TEST(PlanEvaluator, ResetReproducesIncrementalState) {
  Rng graph_rng(7);
  const Dataflow df = makeLayeredDataflow(4, 4, 3, graph_rng);
  const ResourceCatalog catalog = awsCatalog2013();
  const PlanEvaluatorOptions options = defaultOptions();
  PlanEvaluator walked(df, catalog, options);

  Rng rng(3);
  for (int step = 0; step < 120; ++step) {
    const auto pe = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(df.peCount()) - 1));
    const auto n_alts =
        df.pe(PeId(static_cast<PeId::value_type>(pe))).alternateCount();
    walked.setAlternate(
        pe, AlternateId(static_cast<AlternateId::value_type>(
                rng.uniformInt(0, static_cast<std::int64_t>(n_alts) - 1))));
  }
  PlanEvaluator fresh(df, catalog, options);
  fresh.reset(walked.alternates(), walked.vmCounts());
  for (std::size_t i = 0; i < df.peCount(); ++i) {
    EXPECT_EQ(fresh.demand()[i], walked.demand()[i]) << "pe " << i;
  }
  EXPECT_EQ(fresh.theta(), walked.theta());
}

TEST(PlanEvaluator, CoreCountPrescreenMatchesReference) {
  const Dataflow df = makePaperDataflow();
  const ResourceCatalog catalog = awsCatalog2013();
  const PlanEvaluatorOptions options = defaultOptions();
  PlanEvaluator eval(df, catalog, options);
  // One single-core VM for four PEs: rejected by the integer prescreen.
  std::vector<int> counts(catalog.size(), 0);
  counts[0] = 1;
  eval.reset(eval.alternates(), counts);
  const double theta = eval.theta();
  EXPECT_EQ(theta, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(theta, referenceTheta(df, catalog, eval, options));
}

TEST(PlanEvaluator, MemoHitsOnRevisit) {
  const Dataflow df = makePaperDataflow();
  const ResourceCatalog catalog = awsCatalog2013();
  PlanEvaluator eval(df, catalog, defaultOptions());
  std::vector<int> counts(catalog.size(), 0);
  counts[catalog.largest().value()] = 4;
  eval.reset(eval.alternates(), counts);
  (void)eval.theta();
  const auto lookups_before = eval.memoLookups();
  const auto hits_before = eval.memoHits();
  (void)eval.theta();  // identical state: must hit
  EXPECT_EQ(eval.memoLookups(), lookups_before + 1);
  EXPECT_EQ(eval.memoHits(), hits_before + 1);
}

/// packingFeasible (including its bulk fast path for power-of-two core
/// speeds) must agree with tryAssign on every input, especially demands
/// sitting exactly on core-count boundaries where the kEps stop test is
/// decided by the last ulp.
void packingAgreementCheck(const ResourceCatalog& catalog,
                           std::uint64_t seed) {
  static_planning::PackScratch scratch(catalog);
  Rng rng(seed);
  const std::size_t n_classes = catalog.size();
  for (int round = 0; round < 400; ++round) {
    std::vector<int> counts(n_classes);
    for (auto& c : counts) {
      c = static_cast<int>(rng.uniformInt(0, 6));
    }
    const auto n_pes = static_cast<std::size_t>(rng.uniformInt(1, 8));
    std::vector<double> demand(n_pes);
    for (auto& d : demand) {
      switch (rng.uniformInt(0, 3)) {
        case 0:
          d = rng.uniform(0.0, 30.0);
          break;
        case 1: {
          // Exactly on a multiple of some class speed.
          const auto cls = static_cast<std::size_t>(
              rng.uniformInt(0, static_cast<std::int64_t>(n_classes) - 1));
          d = static_cast<double>(rng.uniformInt(0, 12)) *
              catalog.at(ResourceClassId(
                             static_cast<ResourceClassId::value_type>(cls)))
                  .core_speed;
          break;
        }
        case 2:
          // A hair off a speed multiple, straddling the kEps band.
          d = static_cast<double>(rng.uniformInt(1, 12)) +
              (rng.chance(0.5) ? 1e-12 : -1e-12);
          break;
        default:
          d = 0.0;
          break;
      }
    }
    const bool verdict =
        static_planning::packingFeasible(catalog, counts, demand, scratch);
    const bool reference =
        static_planning::tryAssign(catalog, counts, demand).has_value();
    EXPECT_EQ(verdict, reference) << "round " << round;
  }
}

TEST(PackingFeasible, AgreesWithTryAssignOnPowerOfTwoSpeeds) {
  packingAgreementCheck(awsCatalog2013(), 31);
}

TEST(PackingFeasible, AgreesWithTryAssignOnNonPowerOfTwoSpeeds) {
  // m3 cores run at 3.25: the bulk closed form is not provably exact, so
  // packingFeasible falls back to the scalar loop — verdicts still agree.
  packingAgreementCheck(awsCatalogSecondGen2013(), 32);
  packingAgreementCheck(awsCatalogMixed2013(), 33);
}

TEST(FeasibilityMemo, ExactKeysNeverConfuseVerdicts) {
  FeasibilityMemo memo;
  memo.init(/*key_words=*/2, /*capacity=*/4);  // tiny: constant eviction
  ASSERT_TRUE(memo.enabled());
  ASSERT_GE(memo.capacity(), 4u);  // clamped up to the probe window

  // Insert far more keys than slots; remember what each key got.
  std::map<std::pair<std::uint64_t, std::uint64_t>, bool> truth;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t key[2] = {i, i * 977};
    const bool verdict = (i % 3) == 0;
    truth[{key[0], key[1]}] = verdict;
    memo.insert(key, verdict);
  }
  // Every surviving entry must return its own verdict; evicted keys must
  // miss (nullopt), never return a colliding slot's verdict.
  int survivors = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t key[2] = {i, i * 977};
    const auto cached = memo.lookup(key);
    if (cached.has_value()) {
      ++survivors;
      const bool expected = truth[std::make_pair(key[0], key[1])];
      EXPECT_EQ(*cached, expected) << "key " << i;
    }
  }
  EXPECT_GT(survivors, 0);
  EXPECT_LE(survivors, static_cast<int>(memo.capacity()));

  // Keys differing only in the second word are distinct entries.
  memo.clear();
  const std::uint64_t a[2] = {7, 1};
  const std::uint64_t b[2] = {7, 2};
  memo.insert(a, true);
  memo.insert(b, false);
  EXPECT_EQ(memo.lookup(a), std::optional<bool>(true));
  EXPECT_EQ(memo.lookup(b), std::optional<bool>(false));
}

TEST(FeasibilityMemo, ZeroCapacityDisables) {
  FeasibilityMemo memo;
  memo.init(1, 0);
  EXPECT_FALSE(memo.enabled());
  const std::uint64_t key[1] = {42};
  memo.insert(key, true);
  EXPECT_FALSE(memo.lookup(key).has_value());
}

}  // namespace
}  // namespace dds
