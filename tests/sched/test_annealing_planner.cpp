#include "dds/sched/annealing_planner.hpp"

#include <gtest/gtest.h>

#include "dds/dataflow/standard_graphs.hpp"
#include "dds/sched/allocation.hpp"
#include "dds/sched/brute_force.hpp"
#include "dds/sched/static_planning.hpp"
#include "dds/sim/rate_model.hpp"

namespace dds {
namespace {

struct Fixture {
  explicit Fixture(Dataflow graph) : df(std::move(graph)) {}
  Dataflow df;
  CloudProvider cloud{awsCatalog2013()};
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon{cloud, replayer};

  SchedulerEnv env() {
    SchedulerEnv e;
    e.dataflow = &df;
    e.cloud = &cloud;
    e.monitor = &mon;
    return e;
  }
};

TEST(StaticPlanning, TryAssignCoversDemandOrFails) {
  const auto catalog = awsCatalog2013();
  // One xlarge = 4 cores of speed 2 = 8 power.
  const std::vector<int> counts = {0, 0, 0, 1};
  const auto ok = static_planning::tryAssign(catalog, counts, {3.0, 4.0});
  ASSERT_TRUE(ok.has_value());
  // Demand 3 -> 2 cores, demand 4 -> 2 cores; exactly full.
  EXPECT_EQ((*ok)[0][3] + (*ok)[1][3], 4);
  EXPECT_FALSE(
      static_planning::tryAssign(catalog, counts, {3.0, 4.0, 2.0})
          .has_value());
}

TEST(StaticPlanning, EveryPeGetsACoreEvenAtZeroDemand) {
  const auto catalog = awsCatalog2013();
  const std::vector<int> counts = {2, 0, 0, 0};
  const auto ok = static_planning::tryAssign(catalog, counts, {0.0, 0.0});
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ((*ok)[0][0], 1);
  EXPECT_EQ((*ok)[1][0], 1);
}

TEST(StaticPlanning, MultisetCostSumsPrices) {
  const auto catalog = awsCatalog2013();
  // 2 smalls + 1 xlarge for 3 hours: (2*0.06 + 0.48) * 3.
  EXPECT_NEAR(static_planning::multisetCost(catalog, {2, 0, 0, 1}, 3.0),
              1.8, 1e-12);
}

TEST(Annealing, OptionsValidation) {
  AnnealingOptions bad;
  bad.iterations = 0;
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = {};
  bad.cooling = 1.0;
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = {};
  bad.initial_temperature = 0.0;
  EXPECT_THROW(bad.validate(), PreconditionError);
}

TEST(Annealing, ProducesFeasiblePlan) {
  Fixture f(makePaperDataflow());
  AnnealingScheduler sched(f.env(), 0.01, kSecondsPerHour);
  const Deployment dep = sched.deploy(5.0);
  EXPECT_TRUE(std::isfinite(sched.bestTheta()));
  // Every PE holds at least one core and the constraint-scaled demand is
  // covered at rated performance.
  ResourceAllocator probe(f.df, f.cloud, 0.7);
  const auto proj = projectThroughput(
      f.df, dep, 5.0, probe.allocatedPower(ratedCorePowerFn(f.cloud)));
  EXPECT_GE(proj.omega, 0.7 - 1e-6);
}

TEST(Annealing, DeterministicForSeed) {
  auto run = [] {
    Fixture f(makePaperDataflow());
    AnnealingOptions opts;
    opts.seed = 99;
    AnnealingScheduler sched(f.env(), 0.01, kSecondsPerHour, opts);
    (void)sched.deploy(5.0);
    return sched.bestTheta();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Annealing, ApproachesBruteForceOptimum) {
  // At a brute-force-tractable rate, annealing should land within a few
  // percent of the exhaustive optimum.
  const double rate = 5.0;
  const double sigma = 0.01;

  Fixture fb(makePaperDataflow());
  BruteForceScheduler brute(fb.env(), sigma, kSecondsPerHour);
  const Deployment brute_dep = brute.deploy(rate);
  const double brute_cost = fb.cloud.accumulatedCost(kSecondsPerHour);

  Fixture fa(makePaperDataflow());
  AnnealingOptions opts;
  opts.iterations = 30'000;
  AnnealingScheduler annealing(fa.env(), sigma, kSecondsPerHour, opts);
  (void)annealing.deploy(rate);

  // Brute force maximizes the same planned Theta the annealer reports.
  const double brute_theta =
      static_planning::deploymentGamma(fb.df, brute_dep) -
      sigma * brute_cost;
  EXPECT_GE(annealing.bestTheta(), brute_theta - 0.02);
  EXPECT_LE(annealing.bestTheta(), brute_theta + 1e-6);
}

TEST(Annealing, TractableWhereBruteForceIsNot) {
  // 50 msg/s blows the brute-force cap; annealing handles it in bounded
  // iterations.
  Fixture fb(makePaperDataflow());
  BruteForceScheduler brute(fb.env(), 0.01, kSecondsPerHour);
  EXPECT_THROW((void)brute.deploy(50.0), SearchSpaceTooLarge);

  Fixture fa(makePaperDataflow());
  AnnealingScheduler annealing(fa.env(), 0.01, kSecondsPerHour);
  const Deployment dep = annealing.deploy(50.0);
  ResourceAllocator probe(fa.df, fa.cloud, 0.7);
  const auto proj = projectThroughput(
      fa.df, dep, 50.0, probe.allocatedPower(ratedCorePowerFn(fa.cloud)));
  EXPECT_GE(proj.omega, 0.7 - 1e-6);
}

TEST(Annealing, RejectsInvalidConstruction) {
  Fixture f(makePaperDataflow());
  EXPECT_THROW(AnnealingScheduler(f.env(), -1.0, kSecondsPerHour),
               PreconditionError);
  EXPECT_THROW(AnnealingScheduler(f.env(), 0.1, 0.0), PreconditionError);
}

}  // namespace
}  // namespace dds
