// Golden regression tests pinning the planners' exact decisions.
//
// The incremental PlanEvaluator is a pure cache: it must not change any
// plan, Theta double, RNG consumption or trace byte relative to the
// from-scratch evaluation the planners shipped with. These tests pin the
// plans and Theta values (hexfloat, bitwise) captured from the
// pre-evaluator implementation, plus two full engine traces compared byte
// for byte against committed fixtures.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/obs/jsonl_sink.hpp"
#include "dds/sched/annealing_planner.hpp"
#include "dds/sched/brute_force.hpp"

namespace dds {
namespace {

struct Fixture {
  explicit Fixture(Dataflow graph) : df(std::move(graph)) {}
  Dataflow df;
  CloudProvider cloud{awsCatalog2013()};
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon{cloud, replayer};

  SchedulerEnv env() {
    SchedulerEnv e;
    e.dataflow = &df;
    e.cloud = &cloud;
    e.monitor = &mon;
    return e;
  }

  std::map<std::string, int> vmMultiset() const {
    std::map<std::string, int> by_class;
    for (const VmId id : cloud.activeVms()) {
      ++by_class[cloud.instance(id).spec().name];
    }
    return by_class;
  }

  int allocatedCores() const {
    int cores = 0;
    for (const VmId id : cloud.activeVms()) {
      cores += cloud.instance(id).allocatedCoreCount();
    }
    return cores;
  }
};

TEST(PlannerDeterminism, GoldenAnnealingPlanOnPaperGraph) {
  Fixture f(makePaperDataflow());
  AnnealingScheduler s(f.env(), 0.01, kSecondsPerHour, AnnealingOptions{});
  const Deployment dep = s.deploy(5.0);
  // Captured from the pre-evaluator implementation (bitwise).
  EXPECT_EQ(s.bestTheta(), 0x1.e0aa64c2f837bp-1);
  for (std::size_t i = 0; i < f.df.peCount(); ++i) {
    EXPECT_EQ(dep.activeAlternate(PeId(static_cast<PeId::value_type>(i)))
                  .value(),
              0u);
  }
  const std::map<std::string, int> expected_vms{
      {"m1.medium", 3}, {"m1.small", 8}, {"m1.xlarge", 11}};
  EXPECT_EQ(f.vmMultiset(), expected_vms);
  EXPECT_EQ(f.allocatedCores(), 55);
}

TEST(PlannerDeterminism, GoldenAnnealingPlanOnLayeredGraph) {
  Rng rng(99);
  Fixture f(makeLayeredDataflow(6, 4, 3, rng));
  AnnealingOptions opts;
  opts.seed = 42;
  opts.iterations = 4000;
  AnnealingScheduler s(f.env(), 0.005, 2 * kSecondsPerHour, opts);
  const Deployment dep = s.deploy(12.0);
  EXPECT_EQ(s.bestTheta(), 0x1.bc3a8daed086bp-1);
  const std::vector<unsigned> expected_alts{2, 2, 0, 0, 2, 0, 1, 1, 2,
                                            1, 2, 0, 0, 1, 2, 1, 0, 1};
  ASSERT_EQ(f.df.peCount(), expected_alts.size());
  for (std::size_t i = 0; i < expected_alts.size(); ++i) {
    EXPECT_EQ(dep.activeAlternate(PeId(static_cast<PeId::value_type>(i)))
                  .value(),
              expected_alts[i])
        << "pe " << i;
  }
  const std::map<std::string, int> expected_vms{
      {"m1.medium", 12}, {"m1.small", 9}, {"m1.xlarge", 15}};
  EXPECT_EQ(f.vmMultiset(), expected_vms);
  EXPECT_EQ(f.allocatedCores(), 81);
}

TEST(PlannerDeterminism, GoldenBruteForcePlanOnPaperGraph) {
  Fixture f(makePaperDataflow());
  BruteForceScheduler s(f.env(), 0.01, kSecondsPerHour);
  (void)s.deploy(3.0);
  EXPECT_EQ(s.plansExamined(), 766920u);
  const std::map<std::string, int> expected_vms{
      {"m1.large", 1}, {"m1.medium", 3}, {"m1.small", 53}};
  EXPECT_EQ(f.vmMultiset(), expected_vms);
  EXPECT_EQ(f.allocatedCores(), 58);
}

TEST(PlannerDeterminism, ReferencePathMatchesIncrementalPath) {
  auto run = [](bool incremental, std::map<std::string, int>& vms,
                int& cores, std::vector<unsigned>& alts) {
    Rng rng(99);
    Fixture f(makeLayeredDataflow(6, 4, 3, rng));
    AnnealingOptions opts;
    opts.seed = 42;
    opts.iterations = 4000;
    opts.incremental_evaluation = incremental;
    AnnealingScheduler s(f.env(), 0.005, 2 * kSecondsPerHour, opts);
    const Deployment dep = s.deploy(12.0);
    vms = f.vmMultiset();
    cores = f.allocatedCores();
    alts.clear();
    for (std::size_t i = 0; i < f.df.peCount(); ++i) {
      alts.push_back(
          dep.activeAlternate(PeId(static_cast<PeId::value_type>(i)))
              .value());
    }
    return s.bestTheta();
  };
  std::map<std::string, int> vms_inc, vms_ref;
  int cores_inc = 0, cores_ref = 0;
  std::vector<unsigned> alts_inc, alts_ref;
  const double theta_inc = run(true, vms_inc, cores_inc, alts_inc);
  const double theta_ref = run(false, vms_ref, cores_ref, alts_ref);
  EXPECT_EQ(theta_inc, theta_ref);  // bitwise
  EXPECT_EQ(alts_inc, alts_ref);
  EXPECT_EQ(vms_inc, vms_ref);
  EXPECT_EQ(cores_inc, cores_ref);
}

std::string readFixture(const std::string& name) {
  const std::string path = std::string(DDS_SCHED_TESTDATA) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string runTraced(SchedulerKind kind) {
  ExperimentConfig cfg;
  cfg.horizon_s = 0.5 * kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;
  cfg.seed = 77;
  const Dataflow df = makePaperDataflow();
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  (void)SimulationEngine(df, cfg).run(kind, &sink);
  return out.str();
}

TEST(PlannerDeterminism, GoldenTraceAnnealingByteIdentical) {
  EXPECT_EQ(runTraced(SchedulerKind::AnnealingStatic),
            readFixture("golden_trace_annealing.jsonl"));
}

TEST(PlannerDeterminism, GoldenTraceGlobalAdaptiveByteIdentical) {
  EXPECT_EQ(runTraced(SchedulerKind::GlobalAdaptive),
            readFixture("golden_trace_global.jsonl"));
}

}  // namespace
}  // namespace dds
