#include "dds/sched/alternate_selection.hpp"

#include <gtest/gtest.h>

#include "dds/dataflow/standard_graphs.hpp"

namespace dds {
namespace {

TEST(StrategyToString, Names) {
  EXPECT_EQ(toString(Strategy::Local), "local");
  EXPECT_EQ(toString(Strategy::Global), "global");
}

TEST(DownstreamCosts, SinkCostIsItsOwn) {
  const Dataflow df = makePaperDataflow();
  const Deployment dep(df);
  const auto dc = downstreamCosts(df, dep);
  // E4 has no successors: dc = its own cost.
  EXPECT_DOUBLE_EQ(dc[3], 3.2);
}

TEST(DownstreamCosts, PropagatesWithSelectivity) {
  const Dataflow df = makePaperDataflow();
  const Deployment dep(df);  // accurate alternates everywhere
  const auto dc = downstreamCosts(df, dep);
  // E2: c=8.0, s=1.0, successor E4 dc=3.2 -> 11.2.
  EXPECT_DOUBLE_EQ(dc[1], 8.0 + 1.0 * 3.2);
  // E3: c=12.0, s=1.2 -> 12.0 + 1.2*3.2 = 15.84.
  EXPECT_NEAR(dc[2], 15.84, 1e-12);
  // E1: c=2.0, s=1.0, successors E2+E3 -> 2.0 + (11.2 + 15.84).
  EXPECT_NEAR(dc[0], 2.0 + 11.2 + 15.84, 1e-12);
}

TEST(DownstreamCosts, ReflectsActiveAlternates) {
  const Dataflow df = makePaperDataflow();
  Deployment dep(df);
  dep.setActiveAlternate(PeId(1), AlternateId(1));  // e2-fast: c=4.0, s=0.8
  const auto dc = downstreamCosts(df, dep);
  EXPECT_NEAR(dc[1], 4.0 + 0.8 * 3.2, 1e-12);
}

TEST(AlternateCost, LocalIsOwnCost) {
  const Dataflow df = makePaperDataflow();
  const Alternate cand{"x", 1.0, 0.42, 1.5};
  EXPECT_DOUBLE_EQ(alternateCost(Strategy::Local, df, PeId(1), cand, {}),
                   0.42);
}

TEST(AlternateCost, GlobalAddsDownstreamScaledBySelectivity) {
  const Dataflow df = makePaperDataflow();
  const Deployment dep(df);
  const auto dc = downstreamCosts(df, dep);
  const Alternate cand{"x", 1.0, 0.42, 1.5};
  // PE 1's only successor is E4 (dc = 3.2).
  EXPECT_NEAR(alternateCost(Strategy::Global, df, PeId(1), cand, dc),
              0.42 + 1.5 * 3.2, 1e-12);
}

TEST(SelectInitial, LocalPicksBestValuePerCostRatio) {
  const Dataflow df = makePaperDataflow();
  Deployment dep(df);
  selectInitialAlternates(Strategy::Local, df, dep);
  // E2: accurate gamma/c = 1/8; fast = 0.7/4 -> fast wins.
  EXPECT_EQ(dep.activeAlternate(PeId(1)), AlternateId(1));
  // E3: accurate 1/12; fast 0.6/4.8 = 0.125 -> fast wins.
  EXPECT_EQ(dep.activeAlternate(PeId(2)), AlternateId(1));
}

TEST(SelectInitial, GlobalAccountsForDownstreamLoad) {
  // Craft a PE whose cheap alternate has huge selectivity: locally it wins,
  // globally the induced downstream load makes it lose.
  DataflowBuilder b("sel");
  const PeId a = b.addPe("amp", {{"lean", 1.0, 0.10, 1.0},
                                 {"flood", 0.95, 0.08, 10.0}});
  const PeId c = b.addPe("heavy", {{"h", 1.0, 1.0, 1.0}});
  b.addEdge(a, c);
  const Dataflow df = std::move(b).build();

  Deployment local_dep(df);
  selectInitialAlternates(Strategy::Local, df, local_dep);
  // Local: flood ratio 0.95/0.08 > lean 1.0/0.10 -> flood.
  EXPECT_EQ(local_dep.activeAlternate(a), AlternateId(1));

  Deployment global_dep(df);
  selectInitialAlternates(Strategy::Global, df, global_dep);
  // Global: lean 1.0/(0.1+1*1) = 0.909 vs flood 0.95/(0.08+10*1) = 0.094.
  EXPECT_EQ(global_dep.activeAlternate(a), AlternateId(0));
}

TEST(SelectInitial, SingleAlternatePesUntouched) {
  const Dataflow df = makePaperDataflow();
  for (const auto strategy : {Strategy::Local, Strategy::Global}) {
    Deployment dep(df);
    selectInitialAlternates(strategy, df, dep);
    EXPECT_EQ(dep.activeAlternate(PeId(0)), AlternateId(0));
    EXPECT_EQ(dep.activeAlternate(PeId(3)), AlternateId(0));
  }
}

TEST(SelectBestValue, PicksHighestValueEverywhere) {
  const Dataflow df = makePaperDataflow();
  Deployment dep(df);
  dep.setActiveAlternate(PeId(1), AlternateId(1));
  selectBestValueAlternates(df, dep);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(dep.activeAlternate(PeId(i)), AlternateId(0));
  }
}

TEST(SelectInitial, GlobalOnChainIsStableUnderRecomputation) {
  const Dataflow df = makeChainDataflow(6, 3);
  Deployment dep(df);
  selectInitialAlternates(Strategy::Global, df, dep);
  // Re-running the selection with the chosen alternates must be a fixed
  // point: the DP used the final choices for every successor.
  Deployment again = dep;
  selectInitialAlternates(Strategy::Global, df, again);
  for (std::size_t i = 0; i < df.peCount(); ++i) {
    const PeId id(static_cast<PeId::value_type>(i));
    EXPECT_EQ(again.activeAlternate(id), dep.activeAlternate(id));
  }
}

}  // namespace
}  // namespace dds
