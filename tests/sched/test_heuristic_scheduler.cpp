#include "dds/sched/heuristic_scheduler.hpp"

#include <gtest/gtest.h>

#include "dds/dataflow/standard_graphs.hpp"
#include "dds/sim/rate_model.hpp"

namespace dds {
namespace {

struct Fixture {
  explicit Fixture(Dataflow graph) : df(std::move(graph)) {}
  Dataflow df;
  CloudProvider cloud{awsCatalog2013()};
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon{cloud, replayer};

  SchedulerEnv env() {
    SchedulerEnv e;
    e.dataflow = &df;
    e.cloud = &cloud;
    e.monitor = &mon;
    e.omega_target = 0.7;
    e.epsilon = 0.05;
    return e;
  }
};

TEST(HeuristicScheduler, Names) {
  Fixture f(makePaperDataflow());
  EXPECT_EQ(HeuristicScheduler(f.env(), Strategy::Local).name(), "local");
  HeuristicOptions static_opts;
  static_opts.adaptive = false;
  EXPECT_EQ(
      HeuristicScheduler(f.env(), Strategy::Global, static_opts).name(),
      "global-static");
  HeuristicOptions nodyn;
  nodyn.use_dynamism = false;
  EXPECT_EQ(HeuristicScheduler(f.env(), Strategy::Local, nodyn).name(),
            "local-nodyn");
}

TEST(HeuristicScheduler, DeployMeetsPlannedConstraint) {
  for (const auto strategy : {Strategy::Local, Strategy::Global}) {
    Fixture f(makePaperDataflow());
    HeuristicScheduler sched(f.env(), strategy);
    const Deployment dep = sched.deploy(10.0);
    ResourceAllocator probe(f.df, f.cloud, 0.7);
    const auto proj = projectThroughput(
        f.df, dep, 10.0, probe.allocatedPower(ratedCorePowerFn(f.cloud)));
    EXPECT_GE(proj.omega, 0.7 - 1e-9) << toString(strategy);
  }
}

TEST(HeuristicScheduler, DeployGivesEveryPeACore) {
  Fixture f(makePaperDataflow());
  HeuristicScheduler sched(f.env(), Strategy::Global);
  (void)sched.deploy(5.0);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_GE(totalCores(f.cloud, PeId(i)), 1);
  }
}

TEST(HeuristicScheduler, DynamismSelectsValueCostAlternates) {
  Fixture f(makePaperDataflow());
  HeuristicScheduler sched(f.env(), Strategy::Local);
  const Deployment dep = sched.deploy(5.0);
  // Local ratios favour the fast alternates on both E2 and E3.
  EXPECT_EQ(dep.activeAlternate(PeId(1)), AlternateId(1));
  EXPECT_EQ(dep.activeAlternate(PeId(2)), AlternateId(1));
}

TEST(HeuristicScheduler, NoDynVariantFixesBestValue) {
  Fixture f(makePaperDataflow());
  HeuristicOptions nodyn;
  nodyn.use_dynamism = false;
  HeuristicScheduler sched(f.env(), Strategy::Local, nodyn);
  const Deployment dep = sched.deploy(5.0);
  EXPECT_EQ(dep.activeAlternate(PeId(1)), AlternateId(0));
  EXPECT_EQ(dep.activeAlternate(PeId(2)), AlternateId(0));
}

TEST(HeuristicScheduler, GlobalDeploymentCostsNoMoreThanLocal) {
  for (const double rate : {5.0, 15.0, 30.0, 50.0}) {
    Fixture fl(makePaperDataflow());
    HeuristicScheduler local(fl.env(), Strategy::Local);
    (void)local.deploy(rate);

    Fixture fg(makePaperDataflow());
    HeuristicScheduler global(fg.env(), Strategy::Global);
    (void)global.deploy(rate);

    // Compare the committed hourly spend right after deployment.
    const double local_cost = fl.cloud.accumulatedCost(kSecondsPerHour);
    const double global_cost = fg.cloud.accumulatedCost(kSecondsPerHour);
    EXPECT_LE(global_cost, local_cost + 1e-9) << "rate " << rate;
  }
}

TEST(HeuristicScheduler, StaticVariantNeverAdapts) {
  Fixture f(makePaperDataflow());
  HeuristicOptions opts;
  opts.adaptive = false;
  HeuristicScheduler sched(f.env(), Strategy::Global, opts);
  Deployment dep = sched.deploy(5.0);
  const int cores_before = totalAllocatedCores(f.cloud);

  IntervalMetrics last;
  last.omega = 0.1;  // dire straits; a live scheduler would react
  ObservedState state;
  state.interval = 4;
  state.now = 240.0;
  state.input_rate = 50.0;
  state.average_omega = 0.1;
  state.last_interval = &last;
  const auto migrations = sched.adapt(state, dep);
  EXPECT_TRUE(migrations.empty());
  EXPECT_EQ(totalAllocatedCores(f.cloud), cores_before);
}

TEST(HeuristicScheduler, AdaptScalesOutUnderLoad) {
  Fixture f(makePaperDataflow());
  HeuristicScheduler sched(f.env(), Strategy::Global);
  Deployment dep = sched.deploy(5.0);
  const int cores_before = totalAllocatedCores(f.cloud);

  IntervalMetrics last;
  last.omega = 0.4;
  ObservedState state;
  state.interval = 1;
  state.now = 60.0;
  state.input_rate = 40.0;  // the rate jumped 8x
  state.average_omega = 0.4;
  state.last_interval = &last;
  (void)sched.adapt(state, dep);
  EXPECT_GT(totalAllocatedCores(f.cloud), cores_before);
}

TEST(HeuristicScheduler, AdaptScalesInWhenOverprovisioned) {
  Fixture f(makePaperDataflow());
  HeuristicScheduler sched(f.env(), Strategy::Global);
  Deployment dep = sched.deploy(50.0);
  const int cores_before = totalAllocatedCores(f.cloud);

  IntervalMetrics last;
  last.omega = 1.0;
  ObservedState state;
  state.interval = 1;
  state.now = 60.0;
  state.input_rate = 5.0;  // the rate collapsed
  state.average_omega = 1.0;
  state.last_interval = &last;
  (void)sched.adapt(state, dep);
  EXPECT_LT(totalAllocatedCores(f.cloud), cores_before);
}

TEST(HeuristicScheduler, AdaptDoesNothingInsideTheBand) {
  Fixture f(makePaperDataflow());
  HeuristicScheduler sched(f.env(), Strategy::Global);
  Deployment dep = sched.deploy(10.0);
  const int cores_before = totalAllocatedCores(f.cloud);

  IntervalMetrics last;
  last.omega = 0.72;  // inside [omega_hat, omega_hat + eps]
  ObservedState state;
  state.interval = 1;
  state.now = 60.0;
  state.input_rate = 10.0;
  state.average_omega = 0.72;
  state.last_interval = &last;
  (void)sched.adapt(state, dep);
  EXPECT_EQ(totalAllocatedCores(f.cloud), cores_before);
}

TEST(HeuristicScheduler, AlternatePhaseUpgradesValueWhenAhead) {
  Fixture f(makePaperDataflow());
  HeuristicScheduler sched(f.env(), Strategy::Local);
  Deployment dep = sched.deploy(5.0);
  ASSERT_EQ(dep.activeAlternate(PeId(1)), AlternateId(1));  // fast

  // Plenty of free resources: acquire idle xlarges covering the jump from
  // the fast alternates (4 + 4.8 c/msg) to the accurate ones (8 + 12).
  for (int i = 0; i < 10; ++i) {
    (void)f.cloud.acquire(ResourceClassId(3), 0.0);
  }

  IntervalMetrics last;
  last.omega = 1.0;  // comfortably over-provisioned
  ObservedState state;
  state.interval = 2;  // alternate phase runs on even intervals by default
  state.now = 120.0;
  state.input_rate = 5.0;
  state.average_omega = 1.0;
  state.last_interval = &last;
  (void)sched.adapt(state, dep);
  // With omega over the band and free capacity, at least one PE should
  // have upgraded toward the higher-value (more expensive) alternate.
  const bool upgraded =
      dep.activeAlternate(PeId(1)) == AlternateId(0) ||
      dep.activeAlternate(PeId(2)) == AlternateId(0);
  EXPECT_TRUE(upgraded);
}

TEST(HeuristicScheduler, AlternatePhaseDowngradesWhenBehind) {
  Fixture f(makePaperDataflow());
  HeuristicOptions opts;
  opts.use_dynamism = true;
  HeuristicScheduler sched(f.env(), Strategy::Local, opts);
  Deployment dep = sched.deploy(5.0);
  // Force the expensive alternates on, as if the workload had been light.
  dep.setActiveAlternate(PeId(1), AlternateId(0));
  dep.setActiveAlternate(PeId(2), AlternateId(0));

  IntervalMetrics last;
  last.omega = 0.3;  // starved
  ObservedState state;
  state.interval = 2;
  state.now = 120.0;
  state.input_rate = 30.0;
  state.average_omega = 0.3;
  state.last_interval = &last;
  (void)sched.adapt(state, dep);
  // Behind on throughput: the cheaper alternates become feasible and win.
  EXPECT_EQ(dep.activeAlternate(PeId(1)), AlternateId(1));
  EXPECT_EQ(dep.activeAlternate(PeId(2)), AlternateId(1));
}

TEST(HeuristicScheduler, NoDynNeverSwitchesAlternates) {
  Fixture f(makePaperDataflow());
  HeuristicOptions nodyn;
  nodyn.use_dynamism = false;
  HeuristicScheduler sched(f.env(), Strategy::Global, nodyn);
  Deployment dep = sched.deploy(5.0);

  IntervalMetrics last;
  last.omega = 0.2;
  ObservedState state;
  state.interval = 2;
  state.now = 120.0;
  state.input_rate = 40.0;
  state.average_omega = 0.2;
  state.last_interval = &last;
  (void)sched.adapt(state, dep);
  EXPECT_EQ(dep.activeAlternate(PeId(1)), AlternateId(0));
  EXPECT_EQ(dep.activeAlternate(PeId(2)), AlternateId(0));
}

TEST(HeuristicScheduler, AlternatePeriodGatesSwitching) {
  Fixture f(makePaperDataflow());
  HeuristicOptions opts;
  opts.alternate_period = 4;
  HeuristicScheduler sched(f.env(), Strategy::Local, opts);
  Deployment dep = sched.deploy(5.0);
  dep.setActiveAlternate(PeId(1), AlternateId(0));

  IntervalMetrics last;
  last.omega = 0.3;
  ObservedState state;
  state.interval = 2;  // not a multiple of 4: alternate phase must skip
  state.now = 120.0;
  state.input_rate = 30.0;
  state.average_omega = 0.3;
  state.last_interval = &last;
  (void)sched.adapt(state, dep);
  EXPECT_EQ(dep.activeAlternate(PeId(1)), AlternateId(0));

  state.interval = 4;
  state.now = 240.0;
  (void)sched.adapt(state, dep);
  EXPECT_EQ(dep.activeAlternate(PeId(1)), AlternateId(1));
}

TEST(HeuristicScheduler, RejectsInvalidOptionsAndEnv) {
  Fixture f(makePaperDataflow());
  HeuristicOptions bad;
  bad.alternate_period = 0;
  EXPECT_THROW(HeuristicScheduler(f.env(), Strategy::Local, bad),
               PreconditionError);
  SchedulerEnv env = f.env();
  env.dataflow = nullptr;
  EXPECT_THROW(HeuristicScheduler(env, Strategy::Local), PreconditionError);
  EXPECT_THROW(
      HeuristicScheduler(f.env(), Strategy::Local).deploy(-1.0),
      PreconditionError);
}

class DeployRateSweepTest
    : public ::testing::TestWithParam<std::tuple<Strategy, double>> {};

TEST_P(DeployRateSweepTest, PlannedOmegaMeetsTarget) {
  const auto [strategy, rate] = GetParam();
  Fixture f(makePaperDataflow());
  HeuristicScheduler sched(f.env(), strategy);
  const Deployment dep = sched.deploy(rate);
  ResourceAllocator probe(f.df, f.cloud, 0.7);
  const auto proj = projectThroughput(
      f.df, dep, rate, probe.allocatedPower(ratedCorePowerFn(f.cloud)));
  EXPECT_GE(proj.omega, 0.7 - 1e-9);
  // Every active VM actually hosts something after deployment cleanup.
  for (const VmId id : f.cloud.activeVms()) {
    EXPECT_GT(f.cloud.instance(id).allocatedCoreCount(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndRates, DeployRateSweepTest,
    ::testing::Combine(::testing::Values(Strategy::Local, Strategy::Global),
                       ::testing::Values(2.0, 5.0, 10.0, 20.0, 35.0,
                                         50.0)));

}  // namespace
}  // namespace dds
