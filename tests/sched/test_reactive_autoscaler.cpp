#include "dds/sched/reactive_autoscaler.hpp"

#include <gtest/gtest.h>

#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/sim/simulator.hpp"

namespace dds {
namespace {

struct Fixture {
  explicit Fixture(Dataflow graph) : df(std::move(graph)) {}
  Dataflow df;
  CloudProvider cloud{awsCatalog2013()};
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon{cloud, replayer};

  SchedulerEnv env() {
    SchedulerEnv e;
    e.dataflow = &df;
    e.cloud = &cloud;
    e.monitor = &mon;
    return e;
  }
};

TEST(ReactiveAutoscaler, OptionsValidation) {
  ReactiveOptions bad;
  bad.backlog_hi_per_core = 1.0;
  bad.backlog_lo_per_core = 2.0;
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = {};
  bad.cooldown_intervals = 0;
  EXPECT_THROW(bad.validate(), PreconditionError);
}

TEST(ReactiveAutoscaler, ColdStartDeployment) {
  Fixture f(makePaperDataflow());
  ReactiveAutoscaler sched(f.env());
  const Deployment dep = sched.deploy(50.0);
  // No model: the 50 msg/s estimate is ignored, one core per PE.
  EXPECT_EQ(totalAllocatedCores(f.cloud), 4);
  // Best-value (not cost-aware) alternates.
  EXPECT_EQ(dep.activeAlternate(PeId(1)), AlternateId(0));
  EXPECT_EQ(dep.activeAlternate(PeId(2)), AlternateId(0));
}

TEST(ReactiveAutoscaler, GrowsUnderBacklogPressure) {
  Fixture f(makePaperDataflow());
  ReactiveAutoscaler sched(f.env());
  Deployment dep = sched.deploy(5.0);
  const int before = totalAllocatedCores(f.cloud);

  IntervalMetrics last;
  last.pe_stats.resize(4);
  last.pe_stats[1].backlog_msgs = 1000.0;  // E2 is drowning
  ObservedState st;
  st.interval = 1;
  st.now = 60.0;
  st.input_rate = 5.0;
  st.average_omega = 0.4;
  st.last_interval = &last;
  (void)sched.adapt(st, dep);
  EXPECT_EQ(totalAllocatedCores(f.cloud), before + 1);
  EXPECT_EQ(totalCores(f.cloud, PeId(1)), 2);
}

TEST(ReactiveAutoscaler, ShrinksOnlyAfterCooldown) {
  Fixture f(makePaperDataflow());
  ReactiveOptions opts;
  opts.cooldown_intervals = 3;
  ReactiveAutoscaler sched(f.env(), opts);
  Deployment dep = sched.deploy(5.0);
  // Give E2 an extra core to shed.
  const VmId vm = f.cloud.acquire(ResourceClassId(0), 0.0);
  f.cloud.instance(vm).allocateCore(PeId(1));
  const int before = totalAllocatedCores(f.cloud);

  IntervalMetrics idle;
  idle.pe_stats.resize(4);
  for (auto& ps : idle.pe_stats) {
    ps.backlog_msgs = 0.0;
    ps.relative_throughput = 1.0;
  }
  ObservedState st;
  st.interval = 1;
  st.now = 60.0;
  st.input_rate = 1.0;
  st.average_omega = 1.0;
  st.last_interval = &idle;

  (void)sched.adapt(st, dep);
  (void)sched.adapt(st, dep);
  EXPECT_EQ(totalAllocatedCores(f.cloud), before);  // still cooling down
  (void)sched.adapt(st, dep);
  EXPECT_EQ(totalAllocatedCores(f.cloud), before - 1);
}

TEST(ReactiveAutoscaler, NeverDropsBelowOneCore) {
  Fixture f(makePaperDataflow());
  ReactiveOptions opts;
  opts.cooldown_intervals = 1;
  ReactiveAutoscaler sched(f.env(), opts);
  Deployment dep = sched.deploy(5.0);

  IntervalMetrics idle;
  idle.pe_stats.resize(4);
  for (auto& ps : idle.pe_stats) ps.relative_throughput = 1.0;
  ObservedState st;
  st.interval = 1;
  st.now = 60.0;
  st.input_rate = 0.1;
  st.average_omega = 1.0;
  st.last_interval = &idle;
  for (int i = 0; i < 10; ++i) (void)sched.adapt(st, dep);
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_GE(totalCores(f.cloud, PeId(p)), 1);
  }
}

TEST(ReactiveAutoscaler, EventuallyCatchesUpInClosedLoop) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = 2.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  const auto r = SimulationEngine(df, cfg).run(
      SchedulerKind::ReactiveBaseline);
  EXPECT_EQ(r.scheduler_name, "reactive-autoscaler");
  // From a one-core cold start it climbs; late intervals keep up.
  const auto& series = r.run.intervals();
  EXPECT_GE(series.back().omega, 0.6);
  EXPECT_GT(r.peak_cores, 10);
}

TEST(ReactiveAutoscaler, CostsMoreOrServesWorseThanGlobalHeuristic) {
  // The headline comparison: under the same workload the model-driven
  // global heuristic dominates the reactive baseline on the combined
  // objective (it also optimizes value, which the baseline cannot).
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = 2.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 20.0;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;
  const auto reactive =
      SimulationEngine(df, cfg).run(SchedulerKind::ReactiveBaseline);
  const auto global =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  EXPECT_GE(global.theta, reactive.theta - 1e-9);
}

}  // namespace
}  // namespace dds
