#include "dds/sched/resilience.hpp"

#include <gtest/gtest.h>

#include "dds/cloud/resource_class.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/sched/allocation.hpp"
#include "dds/trace/trace_replayer.hpp"

namespace dds {
namespace {

/// Perf model for tests: one chosen VM runs at a fixed fraction of rated,
/// everything else is healthy.
class OneSlowVm final : public PerfFaultModel {
 public:
  OneSlowVm(VmId slow, double factor) : slow_(slow), factor_(factor) {}

  [[nodiscard]] double cpuFactor(VmId vm, SimTime, SimTime) const override {
    return vm == slow_ ? factor_ : 1.0;
  }
  [[nodiscard]] bool linkPartitioned(VmId, VmId, SimTime) const override {
    return false;
  }

 private:
  VmId slow_;
  double factor_;
};

/// Acquisition model for tests: rejects the first `n` attempts, accepts
/// the rest; no provisioning delay.
class RejectFirstN final : public AcquisitionFaultModel {
 public:
  explicit RejectFirstN(std::uint64_t n) : n_(n) {}

  [[nodiscard]] bool acquisitionRejected(
      std::uint64_t attempt) const override {
    return attempt < n_;
  }
  [[nodiscard]] SimTime provisioningDelay(VmId,
                                          const ResourceClass&) const override {
    return 0.0;
  }

 private:
  std::uint64_t n_;
};

ResilienceOptions quarantineOptions() {
  ResilienceOptions ro;
  ro.straggler_threshold = 0.5;
  ro.straggler_probes = 3;
  ro.straggler_alpha = 1.0;  // no smoothing: deterministic probe counts
  return ro;
}

TEST(ResilienceOptions, ValidateRejectsBadKnobs) {
  {
    ResilienceOptions ro;
    ro.acquisition_max_retries = 0;
    EXPECT_THROW(ro.validate(), PreconditionError);
  }
  {
    ResilienceOptions ro;
    ro.straggler_threshold = 1.0;
    EXPECT_THROW(ro.validate(), PreconditionError);
  }
  {
    ResilienceOptions ro;
    ro.straggler_alpha = 0.0;
    EXPECT_THROW(ro.validate(), PreconditionError);
  }
}

TEST(StragglerGuard, QuarantinesAfterKConsecutiveLowProbes) {
  CloudProvider cloud(awsCatalog2013());
  const VmId slow = cloud.acquire(ResourceClassId(0), 0.0);
  const VmId healthy = cloud.acquire(ResourceClassId(0), 0.0);
  TraceReplayer replayer = TraceReplayer::ideal();
  const OneSlowVm faults(slow, 0.3);
  const MonitoringService mon(cloud, replayer, nullptr, &faults);

  StragglerGuard guard(cloud, mon, quarantineOptions());
  EXPECT_TRUE(guard.probe(60.0).empty());   // 1st low probe
  EXPECT_TRUE(guard.probe(120.0).empty());  // 2nd
  const auto hit = guard.probe(180.0);      // 3rd crosses the bar
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0], slow);
  EXPECT_TRUE(guard.isQuarantined(slow));
  EXPECT_FALSE(guard.isQuarantined(healthy));
  EXPECT_EQ(guard.quarantineCount(), 1);
  // Never reported twice.
  EXPECT_TRUE(guard.probe(240.0).empty());
}

/// Perf model whose degradation can be toggled mid-test.
class ToggleSlow final : public PerfFaultModel {
 public:
  double factor = 1.0;

  [[nodiscard]] double cpuFactor(VmId, SimTime, SimTime) const override {
    return factor;
  }
  [[nodiscard]] bool linkPartitioned(VmId, VmId, SimTime) const override {
    return false;
  }
};

TEST(StragglerGuard, RecoveryBeforeKProbesResetsTheCounter) {
  CloudProvider cloud(awsCatalog2013());
  (void)cloud.acquire(ResourceClassId(0), 0.0);
  TraceReplayer replayer = TraceReplayer::ideal();
  ToggleSlow faults;
  const MonitoringService mon(cloud, replayer, nullptr, &faults);
  StragglerGuard guard(cloud, mon, quarantineOptions());

  // Two low probes, one healthy probe, then low again: the consecutive-low
  // streak restarts, so quarantine needs three fresh low probes.
  faults.factor = 0.3;
  EXPECT_TRUE(guard.probe(60.0).empty());
  EXPECT_TRUE(guard.probe(120.0).empty());
  faults.factor = 1.0;
  EXPECT_TRUE(guard.probe(180.0).empty());  // streak resets here
  faults.factor = 0.3;
  EXPECT_TRUE(guard.probe(240.0).empty());
  EXPECT_TRUE(guard.probe(300.0).empty());
  EXPECT_EQ(guard.quarantineCount(), 0);
  EXPECT_EQ(guard.probe(360.0).size(), 1u);  // third consecutive low
}

TEST(StragglerGuard, SkipsProvisioningVms) {
  CloudProvider cloud(awsCatalog2013());
  // Give the VM a startup delay via tryAcquire + a delaying model.
  class Delay final : public AcquisitionFaultModel {
   public:
    [[nodiscard]] bool acquisitionRejected(std::uint64_t) const override {
      return false;
    }
    [[nodiscard]] SimTime provisioningDelay(
        VmId, const ResourceClass&) const override {
      return 500.0;
    }
  };
  const Delay delay;
  cloud.setAcquisitionFaults(&delay);
  const auto got = cloud.tryAcquire(ResourceClassId(0), 0.0);
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got.ready_time, 500.0);

  TraceReplayer replayer = TraceReplayer::ideal();
  // Observed power is 0 while provisioning — without the ready check the
  // guard would blacklist a VM that is merely booting.
  const MonitoringService mon(cloud, replayer);
  EXPECT_DOUBLE_EQ(mon.observedCorePower(got.vm, 100.0), 0.0);
  StragglerGuard guard(cloud, mon, quarantineOptions());
  EXPECT_TRUE(guard.probe(100.0).empty());
  EXPECT_TRUE(guard.probe(200.0).empty());
  EXPECT_TRUE(guard.probe(300.0).empty());
  EXPECT_EQ(guard.quarantineCount(), 0);
  // Once ready it probes normally (healthy here).
  EXPECT_GT(mon.observedCorePower(got.vm, 600.0), 0.0);
  EXPECT_TRUE(guard.probe(600.0).empty());
}

TEST(ResourceAllocator, FallsBackToAnotherClassOnRejection) {
  const Dataflow df = makeChainDataflow(2, 1);
  CloudProvider cloud(awsCatalog2013());
  const RejectFirstN reject_one(1);
  cloud.setAcquisitionFaults(&reject_one);
  ResourceAllocator alloc(df, cloud, 0.7);

  alloc.ensureMinimumCores(0.0);
  // First attempt (the preferred largest class) was rejected; the
  // fallback bought a cheaper class and placement proceeded.
  EXPECT_EQ(alloc.acquisitionRejections(), 1);
  ASSERT_EQ(cloud.activeVms().size(), 1u);
  const auto& vm = cloud.instance(cloud.activeVms()[0]);
  const auto& largest = cloud.catalog().at(cloud.catalog().largest());
  EXPECT_LT(vm.spec().price_per_hour, largest.price_per_hour);
  EXPECT_FALSE(alloc.acquisitionBackoffActive(0.0));
}

TEST(ResourceAllocator, ExhaustedRetriesArmExponentialBackoff) {
  const Dataflow df = makeChainDataflow(2, 1);
  CloudProvider cloud(awsCatalog2013());
  const RejectFirstN reject_all(~0ull);
  cloud.setAcquisitionFaults(&reject_all);
  ResourceAllocator alloc(df, cloud, 0.7);
  ResilienceOptions ro;
  ro.acquisition_max_retries = 3;
  ro.acquisition_backoff_s = 60.0;
  alloc.setResilience(ro);

  alloc.ensureMinimumCores(0.0);
  EXPECT_TRUE(cloud.activeVms().empty());
  EXPECT_EQ(alloc.acquisitionRejections(), 3);
  // Backoff armed: 60 s after the first unmet need.
  EXPECT_TRUE(alloc.acquisitionBackoffActive(30.0));
  EXPECT_FALSE(alloc.acquisitionBackoffActive(61.0));

  // While backing off no further attempts are made at all.
  alloc.ensureMinimumCores(30.0);
  EXPECT_EQ(alloc.acquisitionRejections(), 3);
  EXPECT_EQ(cloud.rejectedAcquisitions(), 3u);

  // A second unmet need after the window doubles the backoff.
  alloc.ensureMinimumCores(61.0);
  EXPECT_EQ(alloc.acquisitionRejections(), 6);
  EXPECT_TRUE(alloc.acquisitionBackoffActive(61.0 + 100.0));
  EXPECT_FALSE(alloc.acquisitionBackoffActive(61.0 + 121.0));
}

TEST(ResourceAllocator, SuccessResetsTheBackoffStreak) {
  const Dataflow df = makeChainDataflow(2, 1);
  CloudProvider cloud(awsCatalog2013());
  const RejectFirstN reject_three(3);
  cloud.setAcquisitionFaults(&reject_three);
  ResourceAllocator alloc(df, cloud, 0.7);
  ResilienceOptions ro;
  ro.acquisition_max_retries = 3;
  ro.acquisition_backoff_s = 60.0;
  alloc.setResilience(ro);

  // All three attempts rejected; backoff armed.
  alloc.ensureMinimumCores(0.0);
  EXPECT_TRUE(cloud.activeVms().empty());

  // After the window the provider has recovered: acquisition succeeds and
  // the streak resets, so a later failure starts at the base backoff.
  alloc.ensureMinimumCores(120.0);
  EXPECT_FALSE(cloud.activeVms().empty());
  EXPECT_FALSE(alloc.acquisitionBackoffActive(121.0));
}

}  // namespace
}  // namespace dds
