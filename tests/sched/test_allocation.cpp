#include "dds/sched/allocation.hpp"

#include <gtest/gtest.h>

#include "dds/dataflow/standard_graphs.hpp"
#include "dds/sim/rate_model.hpp"

namespace dds {
namespace {

struct Fixture {
  explicit Fixture(Dataflow graph) : df(std::move(graph)) {}
  Dataflow df;
  CloudProvider cloud{awsCatalog2013()};
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon{cloud, replayer};

  CorePowerFn rated() { return ratedCorePowerFn(cloud); }
};

// ---- projectThroughput ----

TEST(ProjectThroughput, ZeroPowerGivesZeroOmega) {
  Fixture f(makePaperDataflow());
  const Deployment dep(f.df);
  const std::vector<double> none(4, 0.0);
  const auto proj = projectThroughput(f.df, dep, 10.0, none);
  EXPECT_DOUBLE_EQ(proj.omega, 0.0);
}

TEST(ProjectThroughput, AmplePowerGivesUnitOmega) {
  Fixture f(makePaperDataflow());
  const Deployment dep(f.df);
  const std::vector<double> plenty(4, 1000.0);
  const auto proj = projectThroughput(f.df, dep, 10.0, plenty);
  EXPECT_DOUBLE_EQ(proj.omega, 1.0);
  for (const double o : proj.pe_omega) EXPECT_DOUBLE_EQ(o, 1.0);
}

TEST(ProjectThroughput, ExactDemandGivesUnitOmega) {
  Fixture f(makePaperDataflow());
  const Deployment dep(f.df);
  const auto demand = requiredCorePower(f.df, dep, 10.0);
  const auto proj = projectThroughput(f.df, dep, 10.0, demand);
  EXPECT_NEAR(proj.omega, 1.0, 1e-9);
}

TEST(ProjectThroughput, UpstreamThrottleLowersAppOmega) {
  Fixture f(makePaperDataflow());
  const Deployment dep(f.df);
  auto power = requiredCorePower(f.df, dep, 10.0);
  power[0] *= 0.5;  // halve the input PE's capacity
  const auto proj = projectThroughput(f.df, dep, 10.0, power);
  EXPECT_NEAR(proj.omega, 0.5, 1e-9);
  EXPECT_NEAR(proj.pe_omega[0], 0.5, 1e-9);
  // Downstream PEs are sized for the full rate, so their own ratios are 1.
  EXPECT_DOUBLE_EQ(proj.pe_omega[1], 1.0);
}

TEST(ProjectThroughput, ZeroRateIsTriviallySatisfied) {
  Fixture f(makePaperDataflow());
  const Deployment dep(f.df);
  const std::vector<double> none(4, 0.0);
  const auto proj = projectThroughput(f.df, dep, 0.0, none);
  EXPECT_DOUBLE_EQ(proj.omega, 1.0);
}

TEST(ProjectThroughput, RequiredPowerVectorExposed) {
  Fixture f(makePaperDataflow());
  const Deployment dep(f.df);
  const std::vector<double> plenty(4, 1000.0);
  const auto proj = projectThroughput(f.df, dep, 10.0, plenty);
  const auto expected = requiredCorePower(f.df, dep, 10.0);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(proj.required_power[i], expected[i]);
  }
}

TEST(ProjectThroughput, RejectsMismatchedPowerVector) {
  Fixture f(makePaperDataflow());
  const Deployment dep(f.df);
  EXPECT_THROW(
      (void)projectThroughput(f.df, dep, 1.0, std::vector<double>(2, 1.0)),
      PreconditionError);
}

// ---- ResourceAllocator basics ----

TEST(Allocator, EnsureMinimumCoresGivesEveryPeACore) {
  Fixture f(makePaperDataflow());
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.ensureMinimumCores(0.0);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_GE(totalCores(f.cloud, PeId(i)), 1) << "PE " << i;
  }
  // Four PEs fit on a single 4-core xlarge thanks to the lastVM policy.
  EXPECT_EQ(f.cloud.activeVms().size(), 1u);
}

TEST(Allocator, EnsureMinimumCoresColocatesNeighbors) {
  Fixture f(makeChainDataflow(4, 1));
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.ensureMinimumCores(0.0);
  // All four chain stages share the one xlarge.
  EXPECT_TRUE(areColocated(f.cloud, PeId(0), PeId(1)));
  EXPECT_TRUE(areColocated(f.cloud, PeId(2), PeId(3)));
}

TEST(Allocator, EnsureMinimumCoresIsIdempotent) {
  Fixture f(makePaperDataflow());
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.ensureMinimumCores(0.0);
  const int before = totalAllocatedCores(f.cloud);
  alloc.ensureMinimumCores(0.0);
  EXPECT_EQ(totalAllocatedCores(f.cloud), before);
}

TEST(Allocator, AllocatedPowerByPe) {
  Fixture f(makePaperDataflow());
  const VmId xl = f.cloud.acquire(ResourceClassId(3), 0.0);
  f.cloud.instance(xl).allocateCore(PeId(1));
  f.cloud.instance(xl).allocateCore(PeId(1));
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  const auto pw = alloc.allocatedPower(f.rated());
  EXPECT_DOUBLE_EQ(pw[1], 4.0);
  EXPECT_DOUBLE_EQ(pw[0], 0.0);
}

// ---- scaleOut ----

TEST(Allocator, ScaleOutMeetsGlobalTarget) {
  Fixture f(makePaperDataflow());
  Deployment dep(f.df);
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.ensureMinimumCores(0.0);
  alloc.scaleOut(dep, 20.0, f.rated(), 0.0, Strategy::Global);
  const auto proj =
      projectThroughput(f.df, dep, 20.0, alloc.allocatedPower(f.rated()));
  EXPECT_GE(proj.omega, 0.7 - 1e-9);
}

TEST(Allocator, ScaleOutLocalMeetsEveryPeTarget) {
  Fixture f(makePaperDataflow());
  Deployment dep(f.df);
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.ensureMinimumCores(0.0);
  alloc.scaleOut(dep, 20.0, f.rated(), 0.0, Strategy::Local);
  const auto proj =
      projectThroughput(f.df, dep, 20.0, alloc.allocatedPower(f.rated()));
  for (const double o : proj.pe_omega) EXPECT_GE(o, 0.7 - 1e-9);
}

TEST(Allocator, LocalScopeNeverUsesFewerCoresThanGlobal) {
  // Local satisfies every per-PE ratio, which implies the global app-level
  // condition; so local allocations dominate global ones.
  for (const double rate : {5.0, 10.0, 30.0, 50.0}) {
    Fixture fl(makePaperDataflow());
    Deployment dl(fl.df);
    ResourceAllocator al(fl.df, fl.cloud, 0.7);
    al.ensureMinimumCores(0.0);
    al.scaleOut(dl, rate, ratedCorePowerFn(fl.cloud), 0.0, Strategy::Local);

    Fixture fg(makePaperDataflow());
    Deployment dg(fg.df);
    ResourceAllocator ag(fg.df, fg.cloud, 0.7);
    ag.ensureMinimumCores(0.0);
    ag.scaleOut(dg, rate, ratedCorePowerFn(fg.cloud), 0.0,
                Strategy::Global);

    EXPECT_GE(totalAllocatedCores(fl.cloud), totalAllocatedCores(fg.cloud))
        << "rate " << rate;
  }
}

TEST(Allocator, ScaleOutIsNoOpWhenAlreadySatisfied) {
  Fixture f(makePaperDataflow());
  Deployment dep(f.df);
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.ensureMinimumCores(0.0);
  alloc.scaleOut(dep, 2.0, f.rated(), 0.0, Strategy::Global);
  const int cores = totalAllocatedCores(f.cloud);
  alloc.scaleOut(dep, 2.0, f.rated(), 0.0, Strategy::Global);
  EXPECT_EQ(totalAllocatedCores(f.cloud), cores);
}

TEST(Allocator, ScaleOutHandlesHighRates) {
  Fixture f(makePaperDataflow());
  Deployment dep(f.df);
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.ensureMinimumCores(0.0);
  alloc.scaleOut(dep, 50.0, f.rated(), 0.0, Strategy::Global);
  const auto proj =
      projectThroughput(f.df, dep, 50.0, alloc.allocatedPower(f.rated()));
  EXPECT_GE(proj.omega, 0.7 - 1e-9);
  // Sanity: the demand at 50 msg/s with accurate alternates is ~1450
  // standard units, so ~500 speed-2 cores at the 0.7 target (the paper's
  // "100's of VMs" regime) — not thousands.
  EXPECT_LT(totalAllocatedCores(f.cloud), 700);
  EXPECT_GT(totalAllocatedCores(f.cloud), 300);
}

// ---- scaleIn ----

TEST(Allocator, ScaleInRemovesSurplusButKeepsConstraint) {
  Fixture f(makePaperDataflow());
  Deployment dep(f.df);
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.ensureMinimumCores(0.0);
  alloc.scaleOut(dep, 40.0, f.rated(), 0.0, Strategy::Global);
  const int provisioned = totalAllocatedCores(f.cloud);
  // The rate drops to a fifth; most cores are now surplus.
  (void)alloc.scaleIn(dep, 8.0, f.rated(), Strategy::Global, 0.7);
  EXPECT_LT(totalAllocatedCores(f.cloud), provisioned);
  const auto proj =
      projectThroughput(f.df, dep, 8.0, alloc.allocatedPower(f.rated()));
  EXPECT_GE(proj.omega, 0.7 - 1e-9);
}

TEST(Allocator, ScaleInNeverDropsBelowOneCorePerPe) {
  Fixture f(makePaperDataflow());
  Deployment dep(f.df);
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.ensureMinimumCores(0.0);
  alloc.scaleOut(dep, 30.0, f.rated(), 0.0, Strategy::Global);
  (void)alloc.scaleIn(dep, 0.0, f.rated(), Strategy::Global, 0.7);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_GE(totalCores(f.cloud, PeId(i)), 1);
  }
}

TEST(Allocator, ScaleInReportsMigrationsWhenPeLeavesVm) {
  Fixture f(makePaperDataflow());
  Deployment dep(f.df);
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.ensureMinimumCores(0.0);
  alloc.scaleOut(dep, 50.0, f.rated(), 0.0, Strategy::Global);
  const auto migrations =
      alloc.scaleIn(dep, 2.0, f.rated(), Strategy::Global, 0.7);
  for (const auto& ev : migrations) {
    EXPECT_GT(ev.backlog_fraction, 0.0);
    EXPECT_LE(ev.backlog_fraction, 1.0);
    EXPECT_LT(ev.pe.value(), 4u);
  }
}

TEST(Allocator, ScaleInLocalKeepsPerPeFloor) {
  Fixture f(makePaperDataflow());
  Deployment dep(f.df);
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.ensureMinimumCores(0.0);
  alloc.scaleOut(dep, 40.0, f.rated(), 0.0, Strategy::Local);
  (void)alloc.scaleIn(dep, 10.0, f.rated(), Strategy::Local, 0.7);
  const auto proj =
      projectThroughput(f.df, dep, 10.0, alloc.allocatedPower(f.rated()));
  for (const double o : proj.pe_omega) EXPECT_GE(o, 0.7 - 1e-9);
}

// ---- repacking ----

TEST(Allocator, RepackFreeVmsConsolidatesSparseVms) {
  Fixture f(makePaperDataflow());
  // Two xlarges each one core used: repacking should empty one of them.
  const VmId a = f.cloud.acquire(ResourceClassId(3), 0.0);
  const VmId b = f.cloud.acquire(ResourceClassId(3), 0.0);
  f.cloud.instance(a).allocateCore(PeId(0));
  f.cloud.instance(b).allocateCore(PeId(1));
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.repackFreeVms(f.rated());
  const int empties =
      (f.cloud.instance(a).allocatedCoreCount() == 0 ? 1 : 0) +
      (f.cloud.instance(b).allocatedCoreCount() == 0 ? 1 : 0);
  EXPECT_EQ(empties, 1);
  // Capacity preserved: both PEs still hold one core each.
  EXPECT_EQ(totalCores(f.cloud, PeId(0)), 1);
  EXPECT_EQ(totalCores(f.cloud, PeId(1)), 1);
}

TEST(Allocator, RepackFreeVmsNeverMovesToSlowerCores) {
  CloudProvider cloud(ResourceCatalog({
      {"slow", 4, 1.0, 100.0, 0.2},
      {"fast", 4, 2.0, 100.0, 0.5},
  }));
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon(cloud, replayer);
  const Dataflow df = makePaperDataflow();
  // One core used on the fast VM, plenty free on the slow VM.
  const VmId fast = cloud.acquire(ResourceClassId(1), 0.0);
  const VmId slow = cloud.acquire(ResourceClassId(0), 0.0);
  cloud.instance(fast).allocateCore(PeId(0));
  cloud.instance(slow).allocateCore(PeId(1));
  ResourceAllocator alloc(df, cloud, 0.7);
  alloc.repackFreeVms(ratedCorePowerFn(cloud));
  // The fast VM's core must not migrate onto slower cores (capacity drop);
  // the slow VM's core may migrate to the fast VM.
  EXPECT_EQ(cloud.instance(fast).coresOwnedBy(PeId(0)), 1);
  EXPECT_EQ(cloud.instance(slow).allocatedCoreCount(), 0);
  EXPECT_EQ(cloud.instance(fast).coresOwnedBy(PeId(1)), 1);
}

TEST(Allocator, RepackPesMovesSoleTenantToCheaperClass) {
  Fixture f(makePaperDataflow());
  // PE 0 needs 0.8 power at 0.4 msg/s but sits alone on an xlarge.
  const VmId xl = f.cloud.acquire(ResourceClassId(3), 0.0);
  f.cloud.instance(xl).allocateCore(PeId(0));
  Deployment dep(f.df);
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.repackPes(dep, 0.4, f.rated(), 0.0);
  alloc.releaseEmptyVms(ResourceAllocator::ReleasePolicy::Immediate, 0.0,
                        60.0);
  // It should now live on an m1.small ($0.06) instead of xlarge ($0.48).
  const auto cores = peCores(f.cloud, PeId(0));
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(f.cloud.instance(cores[0].vm).spec().name, "m1.small");
}

TEST(Allocator, RepackPesLeavesSharedVmsAlone) {
  Fixture f(makePaperDataflow());
  const VmId xl = f.cloud.acquire(ResourceClassId(3), 0.0);
  f.cloud.instance(xl).allocateCore(PeId(0));
  f.cloud.instance(xl).allocateCore(PeId(1));
  Deployment dep(f.df);
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.repackPes(dep, 5.0, f.rated(), 0.0);
  // Both PEs share the VM: neither is a sole tenant, nothing moves.
  EXPECT_EQ(f.cloud.instance(xl).allocatedCoreCount(), 2);
}

// ---- releaseEmptyVms ----

TEST(Allocator, ReleaseEmptyVmsImmediate) {
  Fixture f(makePaperDataflow());
  const VmId a = f.cloud.acquire(ResourceClassId(0), 0.0);
  const VmId b = f.cloud.acquire(ResourceClassId(0), 0.0);
  f.cloud.instance(b).allocateCore(PeId(0));
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  const int released = alloc.releaseEmptyVms(
      ResourceAllocator::ReleasePolicy::Immediate, 120.0, 60.0);
  EXPECT_EQ(released, 1);
  EXPECT_FALSE(f.cloud.instance(a).isActive());
  EXPECT_TRUE(f.cloud.instance(b).isActive());
}

// ---- spot preference ----

struct SpotFixture {
  explicit SpotFixture(double discount = 0.7)
      : df(makePaperDataflow()), cloud(withSpotTier(awsCatalog2013(), discount)) {}
  Dataflow df;
  CloudProvider cloud;
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon{cloud, replayer};

  /// Class names of every VM ever acquired, in acquisition order.
  std::vector<std::string> acquiredClasses() const {
    std::vector<std::string> names;
    for (const auto& vm : cloud.instances()) names.push_back(vm.spec().name);
    return names;
  }
};

TEST(AllocatorSpot, FractionOneBuysTheSpotTwin) {
  SpotFixture f;
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.setSpotPreference(1.0, 42);
  alloc.ensureMinimumCores(0.0);
  ASSERT_GT(f.cloud.instanceCount(), 0u);
  for (const auto& vm : f.cloud.instances()) {
    EXPECT_TRUE(vm.spec().preemptible) << vm.spec().name;
    EXPECT_EQ(vm.spec().name, "m1.xlarge-spot");
  }
}

TEST(AllocatorSpot, FractionZeroIsBitIdenticalToASpotUnawareAllocator) {
  SpotFixture unaware;
  SpotFixture zeroed;
  ResourceAllocator a(unaware.df, unaware.cloud, 0.7);
  ResourceAllocator b(zeroed.df, zeroed.cloud, 0.7);
  b.setSpotPreference(0.0, 42);
  Deployment da(unaware.df);
  Deployment db(zeroed.df);
  a.ensureMinimumCores(0.0);
  a.scaleOut(da, 60.0, ratedCorePowerFn(unaware.cloud), 0.0,
             Strategy::Global);
  b.ensureMinimumCores(0.0);
  b.scaleOut(db, 60.0, ratedCorePowerFn(zeroed.cloud), 0.0,
             Strategy::Global);
  EXPECT_EQ(unaware.acquiredClasses(), zeroed.acquiredClasses());
  for (const auto& vm : zeroed.cloud.instances()) {
    EXPECT_FALSE(vm.spec().preemptible) << vm.spec().name;
  }
}

TEST(AllocatorSpot, PreferredClassSkipsTheSpotTier) {
  // Even though the spot twin is cheaper at equal power, the unsteered
  // allocator must never buy preemptible capacity by accident.
  SpotFixture f;
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.ensureMinimumCores(0.0);
  for (const auto& vm : f.cloud.instances()) {
    EXPECT_FALSE(vm.spec().preemptible) << vm.spec().name;
  }
}

TEST(AllocatorSpot, SuppressionVetoesTheSpotTier) {
  SpotFixture f;
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.setSpotPreference(1.0, 42);
  alloc.suppressSpot(true);
  alloc.ensureMinimumCores(0.0);
  for (const auto& vm : f.cloud.instances()) {
    EXPECT_FALSE(vm.spec().preemptible) << vm.spec().name;
  }
  // Lifting the veto restores the preference for the next acquisition.
  alloc.suppressSpot(false);
  Deployment dep(f.df);
  alloc.scaleOut(dep, 80.0, ratedCorePowerFn(f.cloud), 0.0,
                 Strategy::Global);
  bool any_spot = false;
  for (const auto& vm : f.cloud.instances()) {
    any_spot = any_spot || vm.spec().preemptible;
  }
  EXPECT_TRUE(any_spot);
}

TEST(AllocatorSpot, ChoicesAreSeedDeterministic) {
  auto classesFor = [](std::uint64_t seed) {
    SpotFixture f;
    ResourceAllocator alloc(f.df, f.cloud, 0.7);
    alloc.setSpotPreference(0.5, seed);
    Deployment dep(f.df);
    alloc.ensureMinimumCores(0.0);
    alloc.scaleOut(dep, 120.0, ratedCorePowerFn(f.cloud), 0.0,
                   Strategy::Global);
    return f.acquiredClasses();
  };
  EXPECT_EQ(classesFor(42), classesFor(42));
}

TEST(AllocatorSpot, PlainCatalogIgnoresThePreference) {
  Fixture f(makePaperDataflow());  // on-demand-only catalog
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  alloc.setSpotPreference(1.0, 42);
  alloc.ensureMinimumCores(0.0);
  ASSERT_GT(f.cloud.instanceCount(), 0u);
  for (const auto& vm : f.cloud.instances()) {
    EXPECT_FALSE(vm.spec().preemptible);
  }
}

TEST(AllocatorSpot, PreferenceValidatesTheFraction) {
  SpotFixture f;
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  EXPECT_THROW(alloc.setSpotPreference(-0.1, 1), PreconditionError);
  EXPECT_THROW(alloc.setSpotPreference(1.1, 1), PreconditionError);
}

TEST(Allocator, ReleaseAtHourBoundaryKeepsMidHourVms) {
  Fixture f(makePaperDataflow());
  const VmId a = f.cloud.acquire(ResourceClassId(0), 0.0);
  ResourceAllocator alloc(f.df, f.cloud, 0.7);
  // 30 minutes in: the paid hour still has 1800 s left -> keep.
  EXPECT_EQ(alloc.releaseEmptyVms(
                ResourceAllocator::ReleasePolicy::AtHourBoundary, 1800.0,
                60.0),
            0);
  EXPECT_TRUE(f.cloud.instance(a).isActive());
  // 3570 s in: boundary within the next interval -> release.
  EXPECT_EQ(alloc.releaseEmptyVms(
                ResourceAllocator::ReleasePolicy::AtHourBoundary, 3570.0,
                60.0),
            1);
  EXPECT_FALSE(f.cloud.instance(a).isActive());
}

}  // namespace
}  // namespace dds
