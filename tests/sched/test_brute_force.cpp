#include "dds/sched/brute_force.hpp"

#include <gtest/gtest.h>

#include "dds/dataflow/standard_graphs.hpp"
#include "dds/sched/allocation.hpp"
#include "dds/sched/heuristic_scheduler.hpp"
#include "dds/sim/rate_model.hpp"

namespace dds {
namespace {

struct Fixture {
  explicit Fixture(Dataflow graph) : df(std::move(graph)) {}
  Dataflow df;
  CloudProvider cloud{awsCatalog2013()};
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon{cloud, replayer};

  SchedulerEnv env() {
    SchedulerEnv e;
    e.dataflow = &df;
    e.cloud = &cloud;
    e.monitor = &mon;
    e.omega_target = 0.7;
    e.epsilon = 0.05;
    return e;
  }
};

TEST(BruteForce, DeploysFeasiblePlanOnPaperGraph) {
  Fixture f(makePaperDataflow());
  BruteForceScheduler sched(f.env(), 0.01, kSecondsPerHour);
  const Deployment dep = sched.deploy(5.0);
  EXPECT_GT(sched.plansExamined(), 0u);
  // Planned throughput meets the constraint at rated performance.
  ResourceAllocator probe(f.df, f.cloud, 0.7);
  const auto proj = projectThroughput(
      f.df, dep, 5.0, probe.allocatedPower(ratedCorePowerFn(f.cloud)));
  EXPECT_GE(proj.omega, 0.7 - 1e-6);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_GE(totalCores(f.cloud, PeId(i)), 1);
  }
}

TEST(BruteForce, PlannedThetaDominatesHeuristics) {
  // Brute force maximizes Theta = Gamma - sigma*cost exactly; under the
  // same no-variability assumptions no heuristic deployment can beat its
  // planned objective (the heuristics may well be *cheaper* — they pick
  // cheap alternates by value/cost ratio — but never better on Theta).
  const double rate = 5.0;
  const double sigma = 0.01;
  const Dataflow reference = makePaperDataflow();

  auto plannedTheta = [&](CloudProvider& cloud, const Deployment& dep) {
    double gamma = 0.0;
    for (const auto& pe : reference.pes()) {
      gamma += pe.relativeValue(dep.activeAlternate(pe.id()));
    }
    gamma /= static_cast<double>(reference.peCount());
    return gamma - sigma * cloud.accumulatedCost(kSecondsPerHour);
  };

  Fixture fb(makePaperDataflow());
  BruteForceScheduler brute(fb.env(), sigma, kSecondsPerHour);
  const Deployment brute_dep = brute.deploy(rate);
  const double brute_theta = plannedTheta(fb.cloud, brute_dep);

  for (const auto strategy : {Strategy::Local, Strategy::Global}) {
    Fixture fh(makePaperDataflow());
    HeuristicScheduler heur(fh.env(), strategy);
    const Deployment heur_dep = heur.deploy(rate);
    EXPECT_GE(brute_theta, plannedTheta(fh.cloud, heur_dep) - 1e-9)
        << toString(strategy);
  }
}

TEST(BruteForce, ZeroSigmaMaximizesValue) {
  // With sigma = 0 cost is free, so the optimizer picks the best-value
  // alternates (gamma = 1).
  Fixture f(makePaperDataflow());
  BruteForceScheduler sched(f.env(), 0.0, kSecondsPerHour);
  const Deployment dep = sched.deploy(5.0);
  EXPECT_EQ(dep.activeAlternate(PeId(1)), AlternateId(0));
  EXPECT_EQ(dep.activeAlternate(PeId(2)), AlternateId(0));
}

TEST(BruteForce, HighSigmaPrefersCheapAlternates) {
  // When cost dominates the objective, the cheap/fast alternates win.
  Fixture f(makePaperDataflow());
  BruteForceScheduler sched(f.env(), 10.0, kSecondsPerHour);
  const Deployment dep = sched.deploy(5.0);
  EXPECT_EQ(dep.activeAlternate(PeId(1)), AlternateId(1));
  EXPECT_EQ(dep.activeAlternate(PeId(2)), AlternateId(1));
}

TEST(BruteForce, SearchSpaceCapThrows) {
  Fixture f(makePaperDataflow());
  BruteForceScheduler sched(f.env(), 0.01, kSecondsPerHour,
                            /*max_combinations=*/10);
  EXPECT_THROW((void)sched.deploy(50.0), SearchSpaceTooLarge);
}

TEST(BruteForce, WorksOnSinglePeGraph) {
  Fixture f(makeChainDataflow(1, 2));
  BruteForceScheduler sched(f.env(), 0.01, kSecondsPerHour);
  const Deployment dep = sched.deploy(4.0);
  EXPECT_GE(totalCores(f.cloud, PeId(0)), 1);
  (void)dep;
}

TEST(BruteForce, BillsForFullHorizon) {
  Fixture f(makePaperDataflow());
  BruteForceScheduler sched(f.env(), 0.001, 10.0 * kSecondsPerHour);
  (void)sched.deploy(5.0);
  const double one_hour = f.cloud.accumulatedCost(kSecondsPerHour);
  const double ten_hours = f.cloud.accumulatedCost(10.0 * kSecondsPerHour);
  EXPECT_NEAR(ten_hours, 10.0 * one_hour, 1e-9);
}

TEST(BruteForce, RejectsInvalidConstruction) {
  Fixture f(makePaperDataflow());
  EXPECT_THROW(BruteForceScheduler(f.env(), -0.1, kSecondsPerHour),
               PreconditionError);
  EXPECT_THROW(BruteForceScheduler(f.env(), 0.1, 0.0), PreconditionError);
  EXPECT_THROW(BruteForceScheduler(f.env(), 0.1, kSecondsPerHour, 0),
               PreconditionError);
}

class BruteForceRateTest : public ::testing::TestWithParam<double> {};

TEST_P(BruteForceRateTest, FeasibleAcrossSmallRates) {
  Fixture f(makePaperDataflow());
  BruteForceScheduler sched(f.env(), 0.01, kSecondsPerHour);
  const Deployment dep = sched.deploy(GetParam());
  ResourceAllocator probe(f.df, f.cloud, 0.7);
  const auto proj = projectThroughput(
      f.df, dep, GetParam(),
      probe.allocatedPower(ratedCorePowerFn(f.cloud)));
  EXPECT_GE(proj.omega, 0.7 - 1e-6);
}

// Rates above ~5 msg/s blow past the search-space cap with the paper-
// calibrated costs — mirroring the paper, where brute force is only run
// for small graphs/rates.
INSTANTIATE_TEST_SUITE_P(Rates, BruteForceRateTest,
                         ::testing::Values(2.0, 3.0, 5.0));

}  // namespace
}  // namespace dds
