// Dynamic paths example (§9 future work): choose among alternate
// *subgraphs*, not just alternate task implementations.
//
// The application analyzes a stream either with a single deep model or
// with a filter + light-model cascade. We rank the two paths exactly the
// way Alg. 1 ranks alternates — aggregate value over aggregate
// (selectivity-aware) cost — materialize both, run them, and show that
// the ranking agrees with the measured profit.
#include <iostream>

#include "dds/dds.hpp"

int main() {
  using namespace dds;

  const DynamicPathApplication app = makeCascadePathApplication();

  std::cout << "Path group with " << app.variantCount() << " variants:\n";
  for (std::size_t i = 0; i < app.variantCount(); ++i) {
    std::cout << "  [" << i << "] " << app.variant(i).name
              << ": value " << TextTable::num(app.variantValue(i))
              << ", global cost "
              << TextTable::num(app.variantCost(i, Strategy::Global))
              << " core-s/msg, ratio "
              << TextTable::num(app.variantValue(i) /
                                app.variantCost(i, Strategy::Global))
              << '\n';
  }
  const std::size_t chosen = app.selectVariant(Strategy::Global);
  std::cout << "selected: " << app.variant(chosen).name << "\n\n";

  ExperimentConfig cfg;
  cfg.horizon_s = 2.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 15.0;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;

  TextTable table({"path", "omega", "met", "gamma", "cost$", "theta"});
  for (std::size_t i = 0; i < app.variantCount(); ++i) {
    const Dataflow df = app.materialize(i);
    const auto r =
        SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
    table.addRow({app.variant(i).name, TextTable::num(r.average_omega),
                  r.constraint_met ? "yes" : "NO",
                  TextTable::num(r.average_gamma),
                  TextTable::num(r.total_cost, 2),
                  TextTable::num(r.theta)});
  }
  std::cout << table.render() << '\n'
            << "Reading: the cascade path filters 60% of the stream before "
               "the expensive\nstage, so it runs far cheaper at slightly "
               "lower value — the ratio rule picks\nit, and the measured "
               "run agrees.\n";
  return 0;
}
