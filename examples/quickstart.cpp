// Quickstart: build a dynamic dataflow, deploy it with the global
// heuristic on a simulated elastic cloud, and inspect the QoS/cost result.
//
// This walks the complete public API surface in ~60 lines:
//   dataflow construction -> experiment configuration -> engine run ->
//   metrics inspection.
#include <iostream>

#include "dds/dds.hpp"

int main() {
  using namespace dds;

  // 1. Describe the application as a dynamic dataflow. Each PE may carry
  //    several alternates: {name, value f(p), cost core-sec/msg,
  //    selectivity}. Here the "analyze" stage offers an accurate/expensive
  //    and a fast/cheaper implementation.
  DataflowBuilder builder("quickstart");
  const PeId ingest = builder.addPe("ingest", {{"parse", 1.0, 0.05, 1.0}});
  const PeId analyze =
      builder.addPe("analyze", {{"deep-model", 1.0, 0.25, 1.0},
                                {"sketch", 0.75, 0.10, 1.0}});
  const PeId publish = builder.addPe("publish", {{"emit", 1.0, 0.05, 1.0}});
  builder.addEdge(ingest, analyze);
  builder.addEdge(analyze, publish);
  const Dataflow df = std::move(builder).build();

  // 2. Configure the experiment: a 1-hour run at a mean 10 msg/s with a
  //    periodic-wave input and realistic cloud performance variability.
  ExperimentConfig cfg;
  cfg.horizon_s = 1.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;
  cfg.omega_target = 0.7;  // keep >= 70% relative throughput on average

  // 3. Run the global adaptive heuristic (alternate switching + elastic
  //    VM scaling) and a static baseline for contrast.
  SimulationEngine engine(df, cfg);
  const ExperimentResult adaptive = engine.run(SchedulerKind::GlobalAdaptive);
  const ExperimentResult fixed = engine.run(SchedulerKind::GlobalStatic);

  // 4. Inspect the results.
  auto report = [](const ExperimentResult& r) {
    std::cout << "  scheduler        : " << r.scheduler_name << '\n'
              << "  avg throughput   : " << r.average_omega
              << (r.constraint_met ? "  (constraint met)"
                                   : "  (CONSTRAINT MISSED)")
              << '\n'
              << "  avg value        : " << r.average_gamma << '\n'
              << "  total cost       : $" << r.total_cost << '\n'
              << "  profit (theta)   : " << r.theta << '\n'
              << "  peak VMs / cores : " << r.peak_vms << " / "
              << r.peak_cores << "\n\n";
  };
  std::cout << "== adaptive (global heuristic) ==\n";
  report(adaptive);
  std::cout << "== static (deploy once) ==\n";
  report(fixed);
  return 0;
}
