// Smart-grid stream analytics — the USC campus-microgrid scenario the
// authors' group built continuous dataflows for: smart meters emit
// readings that are parsed, cleaned, aggregated and fed to a demand
// forecaster, with a parallel outage-detection path. Meter traffic is
// strongly periodic (day/night), which is exactly the "periodic wave"
// profile of §8.1.
//
// This example focuses on the elasticity timeline: it prints, for each
// 10-minute slice of a 6-hour run, the input rate, instantaneous Omega,
// active VM count and cumulative cost, showing VMs following the wave.
#include <iostream>

#include "dds/dds.hpp"

int main() {
  using namespace dds;

  DataflowBuilder b("smartgrid");
  const PeId ingest = b.addPe("meter-ingest", {{"parse", 1.0, 0.03, 1.0}});
  const PeId clean =
      b.addPe("clean", {{"full-validate", 1.0, 0.12, 0.95},
                        {"spot-check", 0.7, 0.05, 0.98}});
  const PeId aggregate =
      b.addPe("aggregate", {{"per-building", 1.0, 0.08, 0.2}});
  const PeId forecast =
      b.addPe("forecast", {{"arima-ensemble", 0.9, 0.6, 1.0},
                           {"regression-tree", 0.75, 0.2, 1.0}});
  const PeId outage =
      b.addPe("outage-detect", {{"cusum", 1.0, 0.04, 0.05}});
  const PeId alerts = b.addPe("alerts", {{"notify", 1.0, 0.02, 1.0}});
  b.addEdge(ingest, clean);
  b.addEdge(clean, aggregate);
  b.addEdge(aggregate, forecast);
  b.addEdge(clean, outage);
  b.addEdge(forecast, alerts);
  b.addEdge(outage, alerts);
  const Dataflow df = std::move(b).build();

  ExperimentConfig cfg;
  cfg.horizon_s = 6.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 30.0;  // meter readings/s across campus
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;
  cfg.seed = 90089;
  const SimulationEngine engine(df, cfg);
  const ExperimentResult r = engine.run(SchedulerKind::GlobalAdaptive);

  std::cout << "Smart-grid analytics, 6 h, periodic meter wave around "
            << cfg.workload.mean_rate << " msg/s (global adaptive)\n\n";
  TextTable table({"t(min)", "rate", "omega", "gamma", "VMs", "cores",
                   "cum-cost$"});
  for (const auto& m : r.run.intervals()) {
    if (m.index % 10 != 0) continue;  // one row per 10 minutes
    table.addRow({TextTable::num(m.start / 60.0, 0),
                  TextTable::num(m.input_rate, 1),
                  TextTable::num(m.omega), TextTable::num(m.gamma),
                  std::to_string(m.active_vms),
                  std::to_string(m.allocated_cores),
                  TextTable::num(m.cost_cumulative, 2)});
  }
  std::cout << table.render() << '\n';
  std::cout << "Run summary: avg Omega " << TextTable::num(r.average_omega)
            << (r.constraint_met ? " (constraint met)" : " (MISSED)")
            << ", avg value " << TextTable::num(r.average_gamma)
            << ", total cost $" << TextTable::num(r.total_cost, 2)
            << ", Theta " << TextTable::num(r.theta) << "\n\n"
            << "Reading: core/VM counts breathe with the diurnal wave — "
               "elastic scale-out on\nthe rising edge, scale-in (timed to "
               "paid hour boundaries) on the falling edge,\nwith the "
               "cheap 'spot-check'/'regression-tree' alternates bridging "
               "the peaks.\n";
  return 0;
}
