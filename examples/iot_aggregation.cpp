// IoT sensor aggregation — a many-inputs topology on the *event-level*
// backend: 8 sensor feeds reduce through a binary aggregation tree to one
// dashboard. Shows (a) multi-input dataflows, (b) the message-granularity
// simulator with end-to-end latency percentiles, and (c) an honest
// consequence of the paper's throughput-only objective: adapting to
// Omega-hat = 0.7 deliberately runs below the arrival rate, so queues —
// and latency — grow without bound. The queue-delay SLA extension
// (`max_queue_delay_s`) restores bounded latency for extra capacity.
#include <iostream>

#include "dds/dds.hpp"

int main() {
  using namespace dds;

  const Dataflow df = makeAggregationTreeDataflow(/*leaves=*/8,
                                                  /*fan_in=*/2);
  std::cout << "Aggregation tree: " << df.peCount() << " PEs ("
            << df.inputs().size() << " sensor feeds, depth "
            << df.topologicalOrder().size() - df.inputs().size()
            << " stages)\n\n";

  ExperimentConfig cfg;
  cfg.backend = SimBackend::Event;
  cfg.horizon_s = kSecondsPerHour;
  cfg.workload.mean_rate = 4.0;            // per sensor feed
  cfg.workload.profile = ProfileKind::Spike;  // a 3x burst mid-run
  cfg.workload.infra_variability = true;

  TextTable table({"policy", "omega", "met", "delivered", "lat-mean(s)",
                   "lat-p95(s)", "lat-p99(s)", "cost$"});
  struct Variant {
    std::string label;
    SchedulerKind kind;
    double sla_s;
  };
  for (const auto& v : {Variant{"global (throughput only)",
                                SchedulerKind::GlobalAdaptive, 0.0},
                        Variant{"global + 30s queue SLA",
                                SchedulerKind::GlobalAdaptive, 30.0},
                        Variant{"global-static",
                                SchedulerKind::GlobalStatic, 0.0}}) {
    cfg.max_queue_delay_s = v.sla_s;
    const auto r = SimulationEngine(df, cfg).run(v.kind);
    table.addRow({v.label, TextTable::num(r.average_omega),
                  r.constraint_met ? "yes" : "NO",
                  std::to_string(r.messages_delivered),
                  TextTable::num(r.latency_mean_s),
                  TextTable::num(r.latency_p95_s),
                  TextTable::num(r.latency_p99_s),
                  TextTable::num(r.total_cost, 2)});
  }
  std::cout << table.render() << '\n'
            << "Reading: the throughput-only policy happily satisfies "
               "Omega >= 0.7 while its\nqueues (and latency) diverge — "
               "the paper's objective simply does not see\nlatency. The "
               "30 s queue-delay SLA buys bounded tails with extra "
               "capacity;\nthe static plan sits between, coasting on its "
               "full-demand provisioning.\n";
  return 0;
}
