// Video-analytics pipeline — the classic dynamic-dataflow motivation: a
// continuous stream of frames flows through decode, detect, classify and
// index stages. Detection and classification each offer alternates with
// different F1 scores (the paper's example of a user-defined value
// function) and per-frame compute costs. We compare all seven scheduling
// policies on a bursty feed over a variable cloud and print a ranked
// scoreboard: constraint satisfaction first, then profit Theta — exactly
// the §8.2 comparison rule.
#include <algorithm>
#include <iostream>
#include <vector>

#include "dds/dds.hpp"

int main() {
  using namespace dds;

  // Frame pipeline. Values are F1 scores of real-ish model tiers; costs
  // are core-seconds per frame on a standard core; selectivity < 1 models
  // stages that drop uninteresting frames.
  DataflowBuilder b("video-analytics");
  const PeId decode = b.addPe("decode", {{"ffdecode", 1.0, 0.04, 1.0}});
  const PeId detect =
      b.addPe("detect", {{"dnn-detector", 0.92, 0.30, 0.6},
                         {"cascade-detector", 0.78, 0.12, 0.7},
                         {"motion-gate", 0.55, 0.05, 0.8}});
  const PeId classify =
      b.addPe("classify", {{"resnet-deep", 0.95, 0.40, 1.0},
                           {"mobilenet", 0.80, 0.15, 1.0}});
  const PeId annotate = b.addPe("annotate", {{"overlay", 1.0, 0.06, 1.0}});
  const PeId index = b.addPe("index", {{"indexer", 1.0, 0.05, 1.0}});
  b.addEdge(decode, detect);
  b.addEdge(detect, classify);
  b.addEdge(detect, annotate);   // annotation path runs in parallel
  b.addEdge(classify, index);
  b.addEdge(annotate, index);
  const Dataflow df = std::move(b).build();

  ExperimentConfig cfg;
  cfg.horizon_s = 3.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 25.0;  // frames/s after keyframe sampling
  cfg.workload.profile = ProfileKind::RandomWalk;  // bursty viewership
  cfg.workload.infra_variability = true;
  cfg.omega_target = 0.7;
  const SimulationEngine engine(df, cfg);

  const std::vector<SchedulerKind> kinds = {
      SchedulerKind::GlobalAdaptive,      SchedulerKind::LocalAdaptive,
      SchedulerKind::GlobalAdaptiveNoDyn, SchedulerKind::LocalAdaptiveNoDyn,
      SchedulerKind::GlobalStatic,        SchedulerKind::LocalStatic,
  };
  std::vector<ExperimentResult> results;
  results.reserve(kinds.size());
  for (const auto kind : kinds) results.push_back(engine.run(kind));

  // §8.2's two-level comparison: constraint satisfaction, then Theta.
  std::sort(results.begin(), results.end(),
            [](const ExperimentResult& a, const ExperimentResult& b) {
              if (a.constraint_met != b.constraint_met) {
                return a.constraint_met;
              }
              return a.theta > b.theta;
            });

  TextTable table({"#", "policy", "omega", "met", "value", "cost$",
                   "theta", "peak-VMs"});
  int rank = 1;
  for (const auto& r : results) {
    table.addRow({std::to_string(rank++), r.scheduler_name,
                  TextTable::num(r.average_omega),
                  r.constraint_met ? "yes" : "NO",
                  TextTable::num(r.average_gamma),
                  TextTable::num(r.total_cost, 2), TextTable::num(r.theta),
                  std::to_string(r.peak_vms)});
  }
  std::cout << "Video analytics at " << cfg.workload.mean_rate
            << " frames/s (bursty), 3 h on a variable cloud\n"
            << "(ranked: constraint first, then profit Theta)\n\n"
            << table.render() << '\n'
            << "Reading: the adaptive policies hold the 0.7 throughput "
               "floor by switching\nbetween detector/classifier tiers and "
               "scaling VMs; the no-dynamism variants\npay for the deep "
               "models at all times; the statics cannot react at all.\n";
  return 0;
}
