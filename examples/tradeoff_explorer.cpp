// Trade-off explorer — sweeps the two user-facing knobs of the §6
// optimization problem and prints the resulting operating points:
//   * sigma, the value/cost equivalence factor (how many dollars one unit
//     of application value is worth), swept as multiples of the derived
//     §8.2 default;
//   * Omega-hat, the relative-throughput constraint.
// Useful for answering "what do I give up if I tighten the constraint?"
// and "when does the optimizer stop paying for the accurate alternates?".
#include <iostream>

#include "dds/dds.hpp"

int main() {
  using namespace dds;

  const Dataflow df = makePaperDataflow();

  ExperimentConfig base;
  base.horizon_s = 2.0 * kSecondsPerHour;
  base.workload.mean_rate = 20.0;
  base.workload.profile = ProfileKind::PeriodicWave;
  base.workload.infra_variability = true;

  const double sigma0 =
      deriveSigma(df, base.workload.mean_rate, base.horizon_s);

  std::cout << "Trade-off explorer on the paper's Fig. 1 dataflow, "
            << base.workload.mean_rate << " msg/s wave, 2 h (global adaptive)\n"
            << "derived sigma0 = " << sigma0 << " per dollar\n\n";

  // --- sigma sweep at fixed Omega-hat = 0.7 ---
  std::cout << "(a) sigma sweep (Omega-hat = 0.7): cost-sensitivity of the "
               "optimizer\n";
  TextTable sig_table({"sigma/sigma0", "omega", "value", "cost$", "theta"});
  for (const double mult : {0.0, 0.25, 1.0, 4.0, 16.0}) {
    ExperimentConfig cfg = base;
    cfg.sigma_override = sigma0 * mult;
    const auto r =
        SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
    sig_table.addRow({TextTable::num(mult, 2),
                      TextTable::num(r.average_omega),
                      TextTable::num(r.average_gamma),
                      TextTable::num(r.total_cost, 2),
                      TextTable::num(r.theta)});
  }
  std::cout << sig_table.render() << '\n';

  // --- Omega-hat sweep at the derived sigma ---
  std::cout << "(b) Omega-hat sweep (sigma = sigma0): the price of a "
               "tighter throughput floor\n";
  TextTable om_table(
      {"omega-hat", "omega", "met", "value", "cost$", "theta"});
  for (const double target : {0.5, 0.6, 0.7, 0.8, 0.9, 0.99}) {
    ExperimentConfig cfg = base;
    cfg.omega_target = target;
    const auto r =
        SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
    om_table.addRow({TextTable::num(target, 2),
                     TextTable::num(r.average_omega),
                     r.constraint_met ? "yes" : "NO",
                     TextTable::num(r.average_gamma),
                     TextTable::num(r.total_cost, 2),
                     TextTable::num(r.theta)});
  }
  std::cout << om_table.render() << '\n';

  std::cout << "Reading: (a) as sigma grows, dollars dominate the "
               "objective and the scheduler\nleans on cheap alternates and "
               "leaner allocations; (b) tightening Omega-hat\nbuys "
               "throughput with more cores — the cost column is the price "
               "of QoS.\n";
  return 0;
}
