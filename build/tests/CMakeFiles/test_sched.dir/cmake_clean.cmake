file(REMOVE_RECURSE
  "CMakeFiles/test_sched.dir/sched/test_allocation.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_allocation.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_alternate_selection.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_alternate_selection.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_annealing_planner.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_annealing_planner.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_brute_force.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_brute_force.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_heuristic_scheduler.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_heuristic_scheduler.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_reactive_autoscaler.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_reactive_autoscaler.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_runtime_adaptation.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_runtime_adaptation.cpp.o.d"
  "test_sched"
  "test_sched.pdb"
  "test_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
