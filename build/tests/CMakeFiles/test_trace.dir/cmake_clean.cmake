file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/test_perf_trace.cpp.o"
  "CMakeFiles/test_trace.dir/trace/test_perf_trace.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/test_trace_gen.cpp.o"
  "CMakeFiles/test_trace.dir/trace/test_trace_gen.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/test_trace_io.cpp.o"
  "CMakeFiles/test_trace.dir/trace/test_trace_io.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/test_trace_replayer.cpp.o"
  "CMakeFiles/test_trace.dir/trace/test_trace_replayer.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/test_trace_stats.cpp.o"
  "CMakeFiles/test_trace.dir/trace/test_trace_stats.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
