file(REMOVE_RECURSE
  "CMakeFiles/test_cloud.dir/cloud/test_catalogs.cpp.o"
  "CMakeFiles/test_cloud.dir/cloud/test_catalogs.cpp.o.d"
  "CMakeFiles/test_cloud.dir/cloud/test_cloud_provider.cpp.o"
  "CMakeFiles/test_cloud.dir/cloud/test_cloud_provider.cpp.o.d"
  "CMakeFiles/test_cloud.dir/cloud/test_placement_model.cpp.o"
  "CMakeFiles/test_cloud.dir/cloud/test_placement_model.cpp.o.d"
  "CMakeFiles/test_cloud.dir/cloud/test_resource_class.cpp.o"
  "CMakeFiles/test_cloud.dir/cloud/test_resource_class.cpp.o.d"
  "CMakeFiles/test_cloud.dir/cloud/test_vm_instance.cpp.o"
  "CMakeFiles/test_cloud.dir/cloud/test_vm_instance.cpp.o.d"
  "test_cloud"
  "test_cloud.pdb"
  "test_cloud[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
