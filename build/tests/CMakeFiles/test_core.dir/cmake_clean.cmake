file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_engine.cpp.o"
  "CMakeFiles/test_core.dir/core/test_engine.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_event_backend.cpp.o"
  "CMakeFiles/test_core.dir/core/test_event_backend.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_integration.cpp.o"
  "CMakeFiles/test_core.dir/core/test_integration.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_replication.cpp.o"
  "CMakeFiles/test_core.dir/core/test_replication.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
