file(REMOVE_RECURSE
  "CMakeFiles/dynamic_paths.dir/dynamic_paths.cpp.o"
  "CMakeFiles/dynamic_paths.dir/dynamic_paths.cpp.o.d"
  "dynamic_paths"
  "dynamic_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
