# Empty dependencies file for dynamic_paths.
# This may be replaced when dependencies are built.
