
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dynamic_paths.cpp" "examples/CMakeFiles/dynamic_paths.dir/dynamic_paths.cpp.o" "gcc" "examples/CMakeFiles/dynamic_paths.dir/dynamic_paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eventsim/CMakeFiles/dds_eventsim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/dds_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/paths/CMakeFiles/dds_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dds_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/dds_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/dds_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/dds_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dds_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
