file(REMOVE_RECURSE
  "CMakeFiles/iot_aggregation.dir/iot_aggregation.cpp.o"
  "CMakeFiles/iot_aggregation.dir/iot_aggregation.cpp.o.d"
  "iot_aggregation"
  "iot_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
