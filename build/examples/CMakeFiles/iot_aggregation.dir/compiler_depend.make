# Empty compiler generated dependencies file for iot_aggregation.
# This may be replaced when dependencies are built.
