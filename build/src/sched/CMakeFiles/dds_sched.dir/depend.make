# Empty dependencies file for dds_sched.
# This may be replaced when dependencies are built.
