file(REMOVE_RECURSE
  "libdds_sched.a"
)
