file(REMOVE_RECURSE
  "CMakeFiles/dds_sched.dir/allocation.cpp.o"
  "CMakeFiles/dds_sched.dir/allocation.cpp.o.d"
  "CMakeFiles/dds_sched.dir/alternate_selection.cpp.o"
  "CMakeFiles/dds_sched.dir/alternate_selection.cpp.o.d"
  "CMakeFiles/dds_sched.dir/annealing_planner.cpp.o"
  "CMakeFiles/dds_sched.dir/annealing_planner.cpp.o.d"
  "CMakeFiles/dds_sched.dir/brute_force.cpp.o"
  "CMakeFiles/dds_sched.dir/brute_force.cpp.o.d"
  "CMakeFiles/dds_sched.dir/heuristic_scheduler.cpp.o"
  "CMakeFiles/dds_sched.dir/heuristic_scheduler.cpp.o.d"
  "CMakeFiles/dds_sched.dir/reactive_autoscaler.cpp.o"
  "CMakeFiles/dds_sched.dir/reactive_autoscaler.cpp.o.d"
  "CMakeFiles/dds_sched.dir/static_planning.cpp.o"
  "CMakeFiles/dds_sched.dir/static_planning.cpp.o.d"
  "libdds_sched.a"
  "libdds_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
