
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/allocation.cpp" "src/sched/CMakeFiles/dds_sched.dir/allocation.cpp.o" "gcc" "src/sched/CMakeFiles/dds_sched.dir/allocation.cpp.o.d"
  "/root/repo/src/sched/alternate_selection.cpp" "src/sched/CMakeFiles/dds_sched.dir/alternate_selection.cpp.o" "gcc" "src/sched/CMakeFiles/dds_sched.dir/alternate_selection.cpp.o.d"
  "/root/repo/src/sched/annealing_planner.cpp" "src/sched/CMakeFiles/dds_sched.dir/annealing_planner.cpp.o" "gcc" "src/sched/CMakeFiles/dds_sched.dir/annealing_planner.cpp.o.d"
  "/root/repo/src/sched/brute_force.cpp" "src/sched/CMakeFiles/dds_sched.dir/brute_force.cpp.o" "gcc" "src/sched/CMakeFiles/dds_sched.dir/brute_force.cpp.o.d"
  "/root/repo/src/sched/heuristic_scheduler.cpp" "src/sched/CMakeFiles/dds_sched.dir/heuristic_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/dds_sched.dir/heuristic_scheduler.cpp.o.d"
  "/root/repo/src/sched/reactive_autoscaler.cpp" "src/sched/CMakeFiles/dds_sched.dir/reactive_autoscaler.cpp.o" "gcc" "src/sched/CMakeFiles/dds_sched.dir/reactive_autoscaler.cpp.o.d"
  "/root/repo/src/sched/static_planning.cpp" "src/sched/CMakeFiles/dds_sched.dir/static_planning.cpp.o" "gcc" "src/sched/CMakeFiles/dds_sched.dir/static_planning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/dds_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/dds_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/dds_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dds_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dds_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
