file(REMOVE_RECURSE
  "libdds_config.a"
)
