file(REMOVE_RECURSE
  "CMakeFiles/dds_config.dir/config_file.cpp.o"
  "CMakeFiles/dds_config.dir/config_file.cpp.o.d"
  "libdds_config.a"
  "libdds_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
