# Empty dependencies file for dds_config.
# This may be replaced when dependencies are built.
