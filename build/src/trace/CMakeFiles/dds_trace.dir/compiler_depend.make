# Empty compiler generated dependencies file for dds_trace.
# This may be replaced when dependencies are built.
