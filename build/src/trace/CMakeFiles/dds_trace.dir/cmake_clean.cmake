file(REMOVE_RECURSE
  "CMakeFiles/dds_trace.dir/trace_gen.cpp.o"
  "CMakeFiles/dds_trace.dir/trace_gen.cpp.o.d"
  "CMakeFiles/dds_trace.dir/trace_io.cpp.o"
  "CMakeFiles/dds_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/dds_trace.dir/trace_replayer.cpp.o"
  "CMakeFiles/dds_trace.dir/trace_replayer.cpp.o.d"
  "CMakeFiles/dds_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/dds_trace.dir/trace_stats.cpp.o.d"
  "libdds_trace.a"
  "libdds_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
