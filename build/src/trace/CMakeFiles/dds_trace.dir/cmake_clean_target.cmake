file(REMOVE_RECURSE
  "libdds_trace.a"
)
