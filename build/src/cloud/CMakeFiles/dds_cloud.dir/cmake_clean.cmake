file(REMOVE_RECURSE
  "CMakeFiles/dds_cloud.dir/cloud_provider.cpp.o"
  "CMakeFiles/dds_cloud.dir/cloud_provider.cpp.o.d"
  "CMakeFiles/dds_cloud.dir/placement_model.cpp.o"
  "CMakeFiles/dds_cloud.dir/placement_model.cpp.o.d"
  "CMakeFiles/dds_cloud.dir/resource_class.cpp.o"
  "CMakeFiles/dds_cloud.dir/resource_class.cpp.o.d"
  "libdds_cloud.a"
  "libdds_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
