# Empty dependencies file for dds_cloud.
# This may be replaced when dependencies are built.
