file(REMOVE_RECURSE
  "libdds_cloud.a"
)
