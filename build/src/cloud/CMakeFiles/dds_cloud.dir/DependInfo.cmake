
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/cloud_provider.cpp" "src/cloud/CMakeFiles/dds_cloud.dir/cloud_provider.cpp.o" "gcc" "src/cloud/CMakeFiles/dds_cloud.dir/cloud_provider.cpp.o.d"
  "/root/repo/src/cloud/placement_model.cpp" "src/cloud/CMakeFiles/dds_cloud.dir/placement_model.cpp.o" "gcc" "src/cloud/CMakeFiles/dds_cloud.dir/placement_model.cpp.o.d"
  "/root/repo/src/cloud/resource_class.cpp" "src/cloud/CMakeFiles/dds_cloud.dir/resource_class.cpp.o" "gcc" "src/cloud/CMakeFiles/dds_cloud.dir/resource_class.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
