file(REMOVE_RECURSE
  "libdds_dataflow.a"
)
