# Empty compiler generated dependencies file for dds_dataflow.
# This may be replaced when dependencies are built.
