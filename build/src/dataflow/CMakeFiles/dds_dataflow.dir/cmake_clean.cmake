file(REMOVE_RECURSE
  "CMakeFiles/dds_dataflow.dir/dataflow.cpp.o"
  "CMakeFiles/dds_dataflow.dir/dataflow.cpp.o.d"
  "CMakeFiles/dds_dataflow.dir/standard_graphs.cpp.o"
  "CMakeFiles/dds_dataflow.dir/standard_graphs.cpp.o.d"
  "libdds_dataflow.a"
  "libdds_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
