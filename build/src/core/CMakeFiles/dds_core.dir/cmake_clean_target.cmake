file(REMOVE_RECURSE
  "libdds_core.a"
)
