file(REMOVE_RECURSE
  "libdds_monitor.a"
)
