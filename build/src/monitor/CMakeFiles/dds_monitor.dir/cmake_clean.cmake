file(REMOVE_RECURSE
  "CMakeFiles/dds_monitor.dir/probe_history.cpp.o"
  "CMakeFiles/dds_monitor.dir/probe_history.cpp.o.d"
  "libdds_monitor.a"
  "libdds_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
