# Empty compiler generated dependencies file for dds_monitor.
# This may be replaced when dependencies are built.
