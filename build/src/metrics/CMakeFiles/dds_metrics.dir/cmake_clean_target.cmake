file(REMOVE_RECURSE
  "libdds_metrics.a"
)
