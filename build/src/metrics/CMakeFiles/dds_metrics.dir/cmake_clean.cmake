file(REMOVE_RECURSE
  "CMakeFiles/dds_metrics.dir/run_metrics.cpp.o"
  "CMakeFiles/dds_metrics.dir/run_metrics.cpp.o.d"
  "libdds_metrics.a"
  "libdds_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
