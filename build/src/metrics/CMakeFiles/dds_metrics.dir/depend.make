# Empty dependencies file for dds_metrics.
# This may be replaced when dependencies are built.
