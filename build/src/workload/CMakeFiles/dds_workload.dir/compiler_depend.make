# Empty compiler generated dependencies file for dds_workload.
# This may be replaced when dependencies are built.
