file(REMOVE_RECURSE
  "libdds_workload.a"
)
