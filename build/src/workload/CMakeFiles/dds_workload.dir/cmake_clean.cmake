file(REMOVE_RECURSE
  "CMakeFiles/dds_workload.dir/rate_profile.cpp.o"
  "CMakeFiles/dds_workload.dir/rate_profile.cpp.o.d"
  "libdds_workload.a"
  "libdds_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
