# Empty dependencies file for dds_faults.
# This may be replaced when dependencies are built.
