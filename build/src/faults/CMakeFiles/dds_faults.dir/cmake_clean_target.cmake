file(REMOVE_RECURSE
  "libdds_faults.a"
)
