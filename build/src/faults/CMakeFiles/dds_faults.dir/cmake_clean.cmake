file(REMOVE_RECURSE
  "CMakeFiles/dds_faults.dir/failure_injector.cpp.o"
  "CMakeFiles/dds_faults.dir/failure_injector.cpp.o.d"
  "libdds_faults.a"
  "libdds_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
