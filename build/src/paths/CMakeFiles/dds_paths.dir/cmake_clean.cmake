file(REMOVE_RECURSE
  "CMakeFiles/dds_paths.dir/dynamic_paths.cpp.o"
  "CMakeFiles/dds_paths.dir/dynamic_paths.cpp.o.d"
  "libdds_paths.a"
  "libdds_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
