# Empty dependencies file for dds_paths.
# This may be replaced when dependencies are built.
