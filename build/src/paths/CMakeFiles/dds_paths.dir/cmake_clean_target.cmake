file(REMOVE_RECURSE
  "libdds_paths.a"
)
