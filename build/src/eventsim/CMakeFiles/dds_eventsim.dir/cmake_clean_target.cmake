file(REMOVE_RECURSE
  "libdds_eventsim.a"
)
