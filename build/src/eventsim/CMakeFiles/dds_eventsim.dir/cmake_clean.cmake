file(REMOVE_RECURSE
  "CMakeFiles/dds_eventsim.dir/event_simulator.cpp.o"
  "CMakeFiles/dds_eventsim.dir/event_simulator.cpp.o.d"
  "libdds_eventsim.a"
  "libdds_eventsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_eventsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
