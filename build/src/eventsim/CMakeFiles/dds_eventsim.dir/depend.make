# Empty dependencies file for dds_eventsim.
# This may be replaced when dependencies are built.
