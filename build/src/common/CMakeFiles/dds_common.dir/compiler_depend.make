# Empty compiler generated dependencies file for dds_common.
# This may be replaced when dependencies are built.
