file(REMOVE_RECURSE
  "libdds_common.a"
)
