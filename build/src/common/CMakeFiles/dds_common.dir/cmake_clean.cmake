file(REMOVE_RECURSE
  "CMakeFiles/dds_common.dir/csv.cpp.o"
  "CMakeFiles/dds_common.dir/csv.cpp.o.d"
  "CMakeFiles/dds_common.dir/table.cpp.o"
  "CMakeFiles/dds_common.dir/table.cpp.o.d"
  "libdds_common.a"
  "libdds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
