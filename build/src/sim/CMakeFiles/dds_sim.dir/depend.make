# Empty dependencies file for dds_sim.
# This may be replaced when dependencies are built.
