
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/deployment.cpp" "src/sim/CMakeFiles/dds_sim.dir/deployment.cpp.o" "gcc" "src/sim/CMakeFiles/dds_sim.dir/deployment.cpp.o.d"
  "/root/repo/src/sim/deployment_report.cpp" "src/sim/CMakeFiles/dds_sim.dir/deployment_report.cpp.o" "gcc" "src/sim/CMakeFiles/dds_sim.dir/deployment_report.cpp.o.d"
  "/root/repo/src/sim/rate_model.cpp" "src/sim/CMakeFiles/dds_sim.dir/rate_model.cpp.o" "gcc" "src/sim/CMakeFiles/dds_sim.dir/rate_model.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/dds_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/dds_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/dds_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/dds_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/dds_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dds_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dds_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
