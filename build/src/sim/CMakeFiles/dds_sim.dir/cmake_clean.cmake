file(REMOVE_RECURSE
  "CMakeFiles/dds_sim.dir/deployment.cpp.o"
  "CMakeFiles/dds_sim.dir/deployment.cpp.o.d"
  "CMakeFiles/dds_sim.dir/deployment_report.cpp.o"
  "CMakeFiles/dds_sim.dir/deployment_report.cpp.o.d"
  "CMakeFiles/dds_sim.dir/rate_model.cpp.o"
  "CMakeFiles/dds_sim.dir/rate_model.cpp.o.d"
  "CMakeFiles/dds_sim.dir/simulator.cpp.o"
  "CMakeFiles/dds_sim.dir/simulator.cpp.o.d"
  "libdds_sim.a"
  "libdds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
