file(REMOVE_RECURSE
  "libdds_sim.a"
)
