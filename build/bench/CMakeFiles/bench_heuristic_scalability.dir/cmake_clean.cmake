file(REMOVE_RECURSE
  "CMakeFiles/bench_heuristic_scalability.dir/bench_heuristic_scalability.cpp.o"
  "CMakeFiles/bench_heuristic_scalability.dir/bench_heuristic_scalability.cpp.o.d"
  "bench_heuristic_scalability"
  "bench_heuristic_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heuristic_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
