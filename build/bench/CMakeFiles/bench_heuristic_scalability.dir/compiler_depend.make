# Empty compiler generated dependencies file for bench_heuristic_scalability.
# This may be replaced when dependencies are built.
