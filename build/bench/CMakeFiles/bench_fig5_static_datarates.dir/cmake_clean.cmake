file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_static_datarates.dir/bench_fig5_static_datarates.cpp.o"
  "CMakeFiles/bench_fig5_static_datarates.dir/bench_fig5_static_datarates.cpp.o.d"
  "bench_fig5_static_datarates"
  "bench_fig5_static_datarates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_static_datarates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
