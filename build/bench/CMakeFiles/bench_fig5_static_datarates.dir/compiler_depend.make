# Empty compiler generated dependencies file for bench_fig5_static_datarates.
# This may be replaced when dependencies are built.
