file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_local_vs_global_infra.dir/bench_fig6_local_vs_global_infra.cpp.o"
  "CMakeFiles/bench_fig6_local_vs_global_infra.dir/bench_fig6_local_vs_global_infra.cpp.o.d"
  "bench_fig6_local_vs_global_infra"
  "bench_fig6_local_vs_global_infra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_local_vs_global_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
