# Empty dependencies file for bench_fig6_local_vs_global_infra.
# This may be replaced when dependencies are built.
