# Empty compiler generated dependencies file for bench_fig2_cpu_variability.
# This may be replaced when dependencies are built.
