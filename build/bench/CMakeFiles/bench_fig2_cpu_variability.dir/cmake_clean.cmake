file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_cpu_variability.dir/bench_fig2_cpu_variability.cpp.o"
  "CMakeFiles/bench_fig2_cpu_variability.dir/bench_fig2_cpu_variability.cpp.o.d"
  "bench_fig2_cpu_variability"
  "bench_fig2_cpu_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_cpu_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
