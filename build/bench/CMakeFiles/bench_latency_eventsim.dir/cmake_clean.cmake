file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_eventsim.dir/bench_latency_eventsim.cpp.o"
  "CMakeFiles/bench_latency_eventsim.dir/bench_latency_eventsim.cpp.o.d"
  "bench_latency_eventsim"
  "bench_latency_eventsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_eventsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
