# Empty dependencies file for bench_latency_eventsim.
# This may be replaced when dependencies are built.
