file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_local_vs_global_both.dir/bench_fig8_local_vs_global_both.cpp.o"
  "CMakeFiles/bench_fig8_local_vs_global_both.dir/bench_fig8_local_vs_global_both.cpp.o.d"
  "bench_fig8_local_vs_global_both"
  "bench_fig8_local_vs_global_both.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_local_vs_global_both.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
