# Empty dependencies file for bench_fig8_local_vs_global_both.
# This may be replaced when dependencies are built.
