file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_static_variability.dir/bench_fig4_static_variability.cpp.o"
  "CMakeFiles/bench_fig4_static_variability.dir/bench_fig4_static_variability.cpp.o.d"
  "bench_fig4_static_variability"
  "bench_fig4_static_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_static_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
