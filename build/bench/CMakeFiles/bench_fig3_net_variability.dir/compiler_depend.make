# Empty compiler generated dependencies file for bench_fig3_net_variability.
# This may be replaced when dependencies are built.
