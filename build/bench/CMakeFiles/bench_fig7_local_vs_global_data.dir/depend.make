# Empty dependencies file for bench_fig7_local_vs_global_data.
# This may be replaced when dependencies are built.
