file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_local_vs_global_data.dir/bench_fig7_local_vs_global_data.cpp.o"
  "CMakeFiles/bench_fig7_local_vs_global_data.dir/bench_fig7_local_vs_global_data.cpp.o.d"
  "bench_fig7_local_vs_global_data"
  "bench_fig7_local_vs_global_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_local_vs_global_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
