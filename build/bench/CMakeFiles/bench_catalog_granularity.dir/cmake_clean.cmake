file(REMOVE_RECURSE
  "CMakeFiles/bench_catalog_granularity.dir/bench_catalog_granularity.cpp.o"
  "CMakeFiles/bench_catalog_granularity.dir/bench_catalog_granularity.cpp.o.d"
  "bench_catalog_granularity"
  "bench_catalog_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_catalog_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
