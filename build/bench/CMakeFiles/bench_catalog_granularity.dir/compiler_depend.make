# Empty compiler generated dependencies file for bench_catalog_granularity.
# This may be replaced when dependencies are built.
