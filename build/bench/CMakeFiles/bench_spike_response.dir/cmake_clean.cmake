file(REMOVE_RECURSE
  "CMakeFiles/bench_spike_response.dir/bench_spike_response.cpp.o"
  "CMakeFiles/bench_spike_response.dir/bench_spike_response.cpp.o.d"
  "bench_spike_response"
  "bench_spike_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spike_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
