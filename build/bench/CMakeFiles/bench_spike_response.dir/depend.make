# Empty dependencies file for bench_spike_response.
# This may be replaced when dependencies are built.
