# Empty compiler generated dependencies file for ddsim.
# This may be replaced when dependencies are built.
