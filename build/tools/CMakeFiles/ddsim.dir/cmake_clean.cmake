file(REMOVE_RECURSE
  "CMakeFiles/ddsim.dir/ddsim.cpp.o"
  "CMakeFiles/ddsim.dir/ddsim.cpp.o.d"
  "ddsim"
  "ddsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
